(* End-to-end integration tests: multi-statement SQL scripts through the
   parser, binder, canonicaliser, TestFD, planner and executor — the same
   path the eagerdb CLI takes — with golden expected results. *)

open Eager_schema
open Eager_storage
open Eager_exec
open Eager_core
open Eager_opt
open Eager_parser

let run_script db src =
  match Binder.run_script db src with
  | Ok outcomes -> outcomes
  | Error msg -> Alcotest.fail ("script: " ^ msg)

(* execute a bound query the way the CLI does: canonical grouped queries go
   through the cost-based planner, everything else through the lazy plan *)
let exec_query db (q : Binder.bound_query) order =
  let plan =
    match q with
    | Binder.Grouped input -> (
        match Canonical.of_input db input with
        | Ok cq -> (
            match Planner.decide db cq with
            | Ok d -> d.Planner.chosen
            | Error e ->
                Alcotest.fail ("planner: " ^ Eager_robust.Err.to_string e))
        | Error _ -> (
            match Binder.to_plan db q with
            | Ok p -> p
            | Error msg -> Alcotest.fail msg))
    | _ -> (
        match Binder.to_plan db q with
        | Ok p -> p
        | Error msg -> Alcotest.fail msg)
  in
  Exec.run_rows db (Binder.apply_order order plan)

let results db outcomes =
  List.filter_map
    (function
      | Binder.Query (q, order) -> Some (exec_query db q order)
      | _ -> None)
    outcomes

(* eager runner: queries execute at their position in the script, the way
   the CLI behaves — required when SELECTs interleave with DML *)
let run_script_collecting db src =
  let acc = ref [] in
  match
    Binder.run_script_with db src ~f:(fun o ->
        match o with
        | Binder.Query (q, order) -> acc := exec_query db q order :: !acc
        | _ -> ())
  with
  | Ok () -> List.rev !acc
  | Error msg -> Alcotest.fail ("script: " ^ msg)

let rows_to_strings rows = List.map Row.to_string rows

let test_example1_script () =
  let db = Database.create () in
  let outcomes =
    run_script db
      {|CREATE TABLE Department (DeptID INTEGER, Name VARCHAR(30) NOT NULL,
                                 PRIMARY KEY (DeptID));
        CREATE TABLE Employee (EmpID INTEGER, LastName VARCHAR(30),
                               DeptID INTEGER, PRIMARY KEY (EmpID),
                               FOREIGN KEY (DeptID) REFERENCES Department (DeptID));
        INSERT INTO Department VALUES (1, 'Research'), (2, 'Sales'), (3, 'Empty');
        INSERT INTO Employee VALUES
          (1, 'a', 1), (2, 'b', 1), (3, 'c', 1), (4, 'd', 2), (5, 'e', NULL);
        SELECT D.DeptID, D.Name, COUNT(E.EmpID) AS n
        FROM Employee E, Department D
        WHERE E.DeptID = D.DeptID
        GROUP BY D.DeptID, D.Name
        ORDER BY n DESC;|}
  in
  match results db outcomes with
  | [ rows ] ->
      (* ORDER BY n DESC: Research(3) then Sales(1); Empty absent *)
      Alcotest.(check (list string)) "Example 1 with ORDER BY"
        [ "(1, 'Research', 3)"; "(2, 'Sales', 1)" ]
        (rows_to_strings rows)
  | _ -> Alcotest.fail "expected exactly one SELECT"

let test_full_lifecycle_script () =
  let db = Database.create () in
  let query_results =
    run_script_collecting db
      {|CREATE TABLE Customer (CustID INTEGER, Name VARCHAR(30), Tier VARCHAR(10),
                               PRIMARY KEY (CustID));
        CREATE TABLE Orders (OrderID INTEGER, CustID INTEGER, Amount INTEGER,
                             PRIMARY KEY (OrderID),
                             CHECK (Amount >= 0),
                             FOREIGN KEY (CustID) REFERENCES Customer (CustID));
        INSERT INTO Customer VALUES
          (1, 'acme', 'gold'), (2, 'bolt', 'silver'), (3, 'coil', 'gold');
        INSERT INTO Orders VALUES
          (1, 1, 100), (2, 1, 250), (3, 2, 40), (4, 3, 10), (5, NULL, 5);
        -- revenue per gold customer, big ones only
        SELECT C.CustID, C.Name, SUM(O.Amount) AS rev
        FROM Orders O, Customer C
        WHERE O.CustID = C.CustID AND C.Tier LIKE 'g%'
        GROUP BY C.CustID, C.Name
        HAVING rev >= 100
        ORDER BY rev DESC;
        -- an order gets amended
        UPDATE Orders SET Amount = Amount + 95 WHERE OrderID = 4;
        SELECT C.CustID, C.Name, SUM(O.Amount) AS rev
        FROM Orders O, Customer C
        WHERE O.CustID = C.CustID AND C.Tier LIKE 'g%'
        GROUP BY C.CustID, C.Name
        HAVING rev >= 100
        ORDER BY rev DESC;
        -- customer 3 cancels everything
        DELETE FROM Orders WHERE CustID = 3;
        SELECT C.CustID, SUM(O.Amount) AS rev
        FROM Orders O, Customer C
        WHERE O.CustID = C.CustID
        GROUP BY C.CustID
        ORDER BY C.CustID;|}
  in
  match query_results with
  | [ first; second; third ] ->
      Alcotest.(check (list string)) "gold customers over 100"
        [ "(1, 'acme', 350)" ]
        (rows_to_strings first);
      Alcotest.(check (list string)) "after the amendment"
        [ "(1, 'acme', 350)"; "(3, 'coil', 105)" ]
        (rows_to_strings second);
      Alcotest.(check (list string)) "after the cancellation"
        [ "(1, 350)"; "(2, 40)" ]
        (rows_to_strings third)
  | other ->
      Alcotest.fail (Printf.sprintf "expected 3 SELECTs, got %d" (List.length other))

let test_views_and_explain () =
  let db = Database.create () in
  let outcomes =
    run_script db
      {|CREATE TABLE Part (ClassCode INTEGER, PartNo INTEGER, SupplierNo INTEGER,
                           PRIMARY KEY (ClassCode, PartNo));
        CREATE TABLE Supplier (SupplierNo INTEGER, Name VARCHAR(30),
                               PRIMARY KEY (SupplierNo));
        INSERT INTO Supplier VALUES (1, 's1'), (2, 's2');
        INSERT INTO Part VALUES (25, 1, 1), (25, 2, 1), (25, 3, 2), (9, 4, 2);
        CREATE VIEW Class25 AS
          SELECT P.PartNo no, P.SupplierNo sup FROM Part P WHERE P.ClassCode = 25;
        SELECT S.SupplierNo, COUNT(C.no) AS parts
        FROM Class25 C, Supplier S
        WHERE C.sup = S.SupplierNo
        GROUP BY S.SupplierNo
        ORDER BY S.SupplierNo;
        EXPLAIN SELECT S.SupplierNo, COUNT(C.no) AS parts
        FROM Class25 C, Supplier S
        WHERE C.sup = S.SupplierNo
        GROUP BY S.SupplierNo;|}
  in
  (match results db outcomes with
  | [ rows ] ->
      Alcotest.(check (list string)) "view-based rollup"
        [ "(1, 2)"; "(2, 1)" ]
        (rows_to_strings rows)
  | _ -> Alcotest.fail "expected one SELECT result");
  (* the EXPLAIN outcome carries a bound query too — and TestFD accepts it
     (the view inlines to base tables whose keys are visible) *)
  match
    List.find_map
      (function Binder.Explained (q, _, _) -> Some q | _ -> None)
      outcomes
  with
  | Some (Binder.Grouped input) -> (
      match Canonical.of_input db input with
      | Ok cq -> (
          match Testfd.test db cq with
          | Testfd.Yes -> ()
          | Testfd.No r -> Alcotest.fail ("view query should transform: " ^ r))
      | Error msg -> Alcotest.fail msg)
  | _ -> Alcotest.fail "expected an explained grouped query"

let test_error_stops_script () =
  let db = Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE t (a INTEGER, PRIMARY KEY (a));
         INSERT INTO t VALUES (1);
         INSERT INTO t VALUES (1);
         INSERT INTO t VALUES (2);|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate key must fail the script");
  (* statements before the failure took effect; the failing one did not *)
  Alcotest.(check int) "prefix applied" 1 (Database.row_count db "t")

let test_planner_agrees_with_lazy_plan () =
  (* whatever the planner picks must equal the lazy plan's result *)
  let db = Database.create () in
  let outcomes =
    run_script db
      {|CREATE TABLE D (id INTEGER, PRIMARY KEY (id));
        CREATE TABLE E (eid INTEGER, did INTEGER, sal INTEGER, PRIMARY KEY (eid));
        INSERT INTO D VALUES (1), (2), (3);
        INSERT INTO E VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30), (4, NULL, 40);
        SELECT D.id, COUNT(E.eid) AS n, SUM(E.sal) AS s, AVG(E.sal) AS a,
               MIN(E.sal) AS lo, MAX(E.sal) AS hi
        FROM E, D WHERE E.did = D.id GROUP BY D.id;|}
  in
  let q, order =
    match
      List.find_map
        (function Binder.Query (q, o) -> Some (q, o) | _ -> None)
        outcomes
    with
    | Some x -> x
    | None -> Alcotest.fail "no query"
  in
  let chosen = exec_query db q order in
  let lazy_rows =
    match Binder.to_plan db q with
    | Ok p -> Exec.run_rows db p
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "planner choice ≡ lazy plan" true
    (Exec.multiset_equal chosen lazy_rows);
  Alcotest.(check int) "two groups" 2 (List.length chosen)

let test_index_through_sql () =
  let db = Database.create () in
  ignore
    (run_script db
       {|CREATE TABLE big (id INTEGER, grp INTEGER, v INTEGER, PRIMARY KEY (id));
         CREATE INDEX big_by_grp ON big (grp);|});
  for i = 1 to 500 do
    Database.insert_exn db "big"
      [ Eager_value.Value.Int i; Eager_value.Value.Int (i mod 50);
        Eager_value.Value.Int (i * 2) ]
  done;
  let outcomes = run_script db "SELECT id, v FROM big B WHERE grp = 7;" in
  let q, order =
    match
      List.find_map
        (function Binder.Query (q, o) -> Some (q, o) | _ -> None)
        outcomes
    with
    | Some x -> x
    | None -> Alcotest.fail "no query"
  in
  let plan =
    match Binder.to_plan db q with Ok p -> p | Error m -> Alcotest.fail m
  in
  ignore order;
  (* with indexes: the stats tree shows an IndexScan and results match *)
  let h_idx, st_idx, _ = Exec.run_ordered db plan in
  (match Optree.find ~prefix:"IndexScan" st_idx with
  | Some leaf ->
      Alcotest.(check int) "index fetched only the bucket" 10 leaf.Optree.out_rows
  | None -> Alcotest.fail "expected an IndexScan leaf");
  let h_scan, st_scan, _ =
    Exec.run_ordered
      ~options:{ Exec.default_options with use_indexes = false }
      db plan
  in
  (match Optree.find ~prefix:"IndexScan" st_scan with
  | None -> ()
  | Some _ -> Alcotest.fail "index path must be off");
  Alcotest.(check bool) "index and scan agree" true
    (Exec.multiset_equal (Heap.to_list h_idx) (Heap.to_list h_scan));
  Alcotest.(check int) "ten rows in group 7" 10 (Heap.length h_idx)

let () =
  Alcotest.run "integration"
    [
      ( "scripts",
        [
          Alcotest.test_case "Example 1 end to end" `Quick test_example1_script;
          Alcotest.test_case "insert/update/delete lifecycle" `Quick
            test_full_lifecycle_script;
          Alcotest.test_case "views + EXPLAIN" `Quick test_views_and_explain;
          Alcotest.test_case "errors stop the script" `Quick
            test_error_stops_script;
          Alcotest.test_case "planner agrees with lazy plan" `Quick
            test_planner_agrees_with_lazy_plan;
          Alcotest.test_case "CREATE INDEX + point lookup" `Quick
            test_index_through_sql;
        ] );
    ]
