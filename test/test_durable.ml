(* Durability tests: the WAL record format (round-trip, torn-tail
   tolerance, corruption rejection), log-then-apply recovery semantics,
   checkpointing (including interrupted checkpoints), and a kill/restart
   matrix of 120 seeded schedules that crashes at every wal.* and
   persist.* fault point and proves the recovered database equals the
   committed prefix exactly. *)

open Eager_value
open Eager_catalog
open Eager_storage
open Eager_parser
open Eager_durable
open Eager_robust
open Eager_workload

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  go 0

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "eagerdb_durable_%s_%d_%d" name (Unix.getpid ()) !n)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.fail (name ^ ": " ^ Err.to_string e)

let open_ok ?checkpoint_every dir =
  ok ("open " ^ dir) (Durable.open_ ?checkpoint_every ~dir ())

let exec_sql session sql = Durable.exec session (Parser.parse_statement sql)
let exec_ok session sql = ignore (ok sql (exec_sql session sql))

let wal_is_empty dir =
  let ic = open_in_bin (Wal.path ~dir) in
  let n = in_channel_length ic in
  close_in ic;
  n = String.length "eagerdb wal v1\n"

(* Canonical digest of a database: the regenerated DDL plus every
   table's rows in sorted order — two databases with equal fingerprints
   hold the same logical state. *)
let fingerprint db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Persist.ddl_of_database db);
  let names =
    Catalog.tables (Database.catalog db)
    |> List.map (fun (td : Table_def.t) -> td.Table_def.tname)
    |> List.sort compare
  in
  List.iter
    (fun name ->
      Buffer.add_string buf ("== " ^ name ^ "\n");
      Heap.to_list (Database.heap db name)
      |> List.map (fun row ->
             String.concat ","
               (Array.to_list (Array.map Value.to_string row)))
      |> List.sort compare
      |> List.iter (fun r -> Buffer.add_string buf (r ^ "\n")))
    names;
  Buffer.contents buf

(* ======================= WAL record format ======================== *)

let wal_file name =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eagerdb_%s_%d.wal" name (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  path

let test_wal_roundtrip () =
  let path = wal_file "roundtrip" in
  (match Wal.scan path with
  | Ok ([], Wal.Complete) -> ()
  | _ -> Alcotest.fail "missing file should scan as empty+complete");
  let w = ok "open" (Wal.open_append ~path ~next_seq:1 ()) in
  let payloads =
    [ "INSERT INTO t VALUES (1, 'a')"; "line one\nline two"; ""; "2" ]
  in
  List.iteri
    (fun i p ->
      let kind = if i = 3 then Wal.Abort else Wal.Stmt in
      Alcotest.(check int)
        "assigned seq" (i + 1)
        (ok "append" (Wal.append w ~kind p)))
    payloads;
  Alcotest.(check int) "next_seq" 5 (Wal.next_seq w);
  Wal.close w;
  let records, tail = ok "scan" (Wal.scan path) in
  Alcotest.(check bool) "complete" true (tail = Wal.Complete);
  Alcotest.(check (list string))
    "payloads survive (including newlines and empties)" payloads
    (List.map (fun (r : Wal.record) -> r.payload) records);
  Alcotest.(check (list int))
    "seqs contiguous" [ 1; 2; 3; 4 ]
    (List.map (fun (r : Wal.record) -> r.seq) records);
  Alcotest.(check bool)
    "kinds survive" true
    (List.map (fun (r : Wal.record) -> r.kind) records
    = [ Wal.Stmt; Wal.Stmt; Wal.Stmt; Wal.Abort ])

(* every byte-prefix of a valid log scans as Ok: damage at the end of
   the file is always classified torn, never corrupt *)
let test_wal_torn_prefixes () =
  let path = wal_file "torn" in
  let w = ok "open" (Wal.open_append ~path ~next_seq:1 ()) in
  ignore (ok "a1" (Wal.append w ~kind:Wal.Stmt "CREATE TABLE x (a INT)"));
  ignore (ok "a2" (Wal.append w ~kind:Wal.Stmt "INSERT INTO x VALUES (1)"));
  Wal.close w;
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let n = String.length full in
  let hlen = String.length "eagerdb wal v1\n" in
  for cut = 0 to n - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    match Wal.scan path with
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "prefix of %d bytes rejected: %s" cut
             (Err.to_string e))
    | Ok (records, tail) -> (
        if cut < hlen then
          Alcotest.(check int)
            (Printf.sprintf "no records in %d-byte prefix" cut)
            0 (List.length records);
        match tail with
        | Wal.Complete -> ()
        | Wal.Torn { valid_len; dropped } ->
            Alcotest.(check int)
              (Printf.sprintf "torn accounting at %d" cut)
              cut (valid_len + dropped);
            (* truncating the torn tail must yield a complete log *)
            ok "truncate_to" (Wal.truncate_to path valid_len);
            let records', tail' = ok "rescan" (Wal.scan path) in
            Alcotest.(check bool)
              (Printf.sprintf "complete after truncate at %d" cut)
              true (tail' = Wal.Complete);
            Alcotest.(check int)
              (Printf.sprintf "records preserved at %d" cut)
              (List.length records) (List.length records'))
  done

let test_wal_corruption () =
  let path = wal_file "corrupt" in
  let build () =
    if Sys.file_exists path then Sys.remove path;
    let w = ok "open" (Wal.open_append ~path ~next_seq:1 ()) in
    ignore (ok "a1" (Wal.append w ~kind:Wal.Stmt "CREATE TABLE x (a INT)"));
    ignore (ok "a2" (Wal.append w ~kind:Wal.Stmt "INSERT INTO x VALUES (1)"));
    Wal.close w;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let expect_error name s =
    write s;
    match Wal.scan path with
    | Error e ->
        Alcotest.(check bool)
          (name ^ " is typed Io") true
          (Err.kind e = Err.Io)
    | Ok _ -> Alcotest.fail (name ^ ": corruption accepted")
  in
  let full = build () in
  (* flip a payload byte of the FIRST record: mid-log damage *)
  let flipped = Bytes.of_string full in
  let i = String.length "eagerdb wal v1\n#rec 1 stmt " in
  let i = String.index_from full i '\n' + 3 in
  Bytes.set flipped i (if full.[i] = 'X' then 'Y' else 'X');
  expect_error "mid-log bit rot" (Bytes.to_string flipped);
  (* same damage on the LAST record is a torn tail, not corruption *)
  let flipped = Bytes.of_string full in
  Bytes.set flipped (String.length full - 2) '\x01';
  write (Bytes.to_string flipped);
  (match Wal.scan path with
  | Ok ([ _ ], Wal.Torn _) -> ()
  | Ok _ -> Alcotest.fail "damaged final record should be torn"
  | Error e -> Alcotest.fail ("final-record damage rejected: " ^ Err.to_string e));
  (* a sequence gap is corruption even with valid checksums *)
  let gap =
    let p1 = "CREATE TABLE x (a INT)" and p3 = "INSERT INTO x VALUES (1)" in
    let rec_ seq p =
      Printf.sprintf "#rec %d stmt %d %s\n%s\n" seq (String.length p)
        (Digest.to_hex (Digest.string p))
        p
    in
    "eagerdb wal v1\n" ^ rec_ 1 p1 ^ rec_ 3 p3
  in
  expect_error "sequence gap" gap;
  expect_error "bad magic" "totally not a wal\nor anything like one\n"

let test_wal_poisoned () =
  let path = wal_file "poisoned" in
  let w = ok "open" (Wal.open_append ~path ~next_seq:1 ()) in
  Fault.reset ();
  Fault.arm_nth "wal.append" 1;
  (match Wal.append w ~kind:Wal.Stmt "INSERT INTO x VALUES (1)" with
  | Ok _ -> Alcotest.fail "append should have crashed"
  | Error e ->
      Alcotest.(check bool) "typed Io" true (Err.kind e = Err.Io));
  Fault.reset ();
  Alcotest.(check bool) "handle poisoned" true (Wal.broken w);
  (match Wal.append w ~kind:Wal.Stmt "INSERT INTO x VALUES (2)" with
  | Ok _ -> Alcotest.fail "poisoned handle accepted a write"
  | Error e -> Alcotest.(check bool) "says poisoned" true
        (contains (Err.to_string e) "poisoned"));
  (match Wal.truncate w with
  | Ok _ -> Alcotest.fail "poisoned handle accepted a truncate"
  | Error _ -> ());
  Wal.close w

(* ===================== recovery semantics ========================= *)

let setup_sql =
  [
    "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, PRIMARY KEY (id))";
    "INSERT INTO t VALUES (1, 1, 10), (2, 1, 20)";
    "INSERT INTO t VALUES (3, 2, 30)";
  ]

let test_basic_recovery () =
  let dir = fresh_dir "basic" in
  let s, r0 = open_ok dir in
  Alcotest.(check int) "fresh dir has nothing to replay" 0 r0.Durable.replayed;
  List.iter (exec_ok s) setup_sql;
  let before = fingerprint (Durable.db s) in
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check int) "replayed all three" 3 r.Durable.replayed;
  Alcotest.(check int) "no snapshot yet" 0 r.Durable.snapshot_lsn;
  Alcotest.(check string) "state restored" before (fingerprint (Durable.db s2));
  Durable.close s2;
  (* recovery is idempotent: replaying the same log again lands in the
     same state *)
  let s3, r3 = open_ok dir in
  Alcotest.(check int) "same replay count" 3 r3.Durable.replayed;
  Alcotest.(check string) "same state" before (fingerprint (Durable.db s3));
  Durable.close s3

let test_append_crash_statement_absent () =
  let dir = fresh_dir "append_crash" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  Fault.reset ();
  Fault.arm_nth "wal.append" 1;
  (match exec_sql s "INSERT INTO t VALUES (4, 2, 40)" with
  | Ok _ -> Alcotest.fail "append crash should surface"
  | Error e ->
      Alcotest.(check bool) "injected" true
        (contains (Err.to_string e) "injected fault"));
  Fault.reset ();
  (* the session is poisoned: no silent writes after a log failure *)
  (match exec_sql s "INSERT INTO t VALUES (5, 2, 50)" with
  | Ok _ -> Alcotest.fail "poisoned session accepted a statement"
  | Error _ -> ());
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check bool) "torn tail dropped" true (r.Durable.torn_bytes > 0);
  Alcotest.(check int) "uncommitted statement absent" 3
    (Database.row_count (Durable.db s2) "t");
  Durable.close s2

let test_fsync_crash_statement_present () =
  let dir = fresh_dir "fsync_crash" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  Fault.reset ();
  Fault.arm_nth "wal.fsync" 1;
  (match exec_sql s "INSERT INTO t VALUES (4, 2, 40)" with
  | Ok _ -> Alcotest.fail "fsync crash should surface"
  | Error _ -> ());
  Fault.reset ();
  Durable.close s;
  (* the record was fully written before the simulated crash, so the
     statement is committed and recovery replays it *)
  let s2, r = open_ok dir in
  Alcotest.(check int) "no torn bytes" 0 r.Durable.torn_bytes;
  Alcotest.(check int) "committed statement present" 4
    (Database.row_count (Durable.db s2) "t");
  Durable.close s2

let test_abort_marker () =
  let dir = fresh_dir "abort" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  (* logged, then refused at bind time: leaves an abort marker *)
  (match exec_sql s "INSERT INTO nosuch VALUES (1)" with
  | Ok _ -> Alcotest.fail "insert into missing table succeeded"
  | Error _ -> ());
  exec_ok s "INSERT INTO t VALUES (4, 2, 40)";
  let before = fingerprint (Durable.db s) in
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check int) "abort marker honoured" 1 r.Durable.skipped_aborted;
  Alcotest.(check int) "good statements replayed" 4 r.Durable.replayed;
  Alcotest.(check string) "state matches" before (fingerprint (Durable.db s2));
  Durable.close s2

let test_checkpoint () =
  let dir = fresh_dir "checkpoint" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  (match ok "CHECKPOINT" (exec_sql s "CHECKPOINT") with
  | Eager_parser.Binder.Checkpointed lsn ->
      Alcotest.(check int) "lsn covers the log" 3 lsn
  | _ -> Alcotest.fail "expected Checkpointed outcome");
  Alcotest.(check bool) "wal truncated" true (wal_is_empty dir);
  exec_ok s "INSERT INTO t VALUES (4, 2, 40)";
  let before = fingerprint (Durable.db s) in
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check int) "snapshot carries the lsn" 3 r.Durable.snapshot_lsn;
  Alcotest.(check int) "only the post-checkpoint tail replays" 1
    r.Durable.replayed;
  Alcotest.(check string) "state matches" before (fingerprint (Durable.db s2));
  Durable.close s2

let test_auto_checkpoint () =
  let dir = fresh_dir "auto_checkpoint" in
  let s, _ = open_ok ~checkpoint_every:2 dir in
  exec_ok s "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, PRIMARY KEY (id))";
  exec_ok s "INSERT INTO t VALUES (1, 1, 10)";
  Alcotest.(check bool) "checkpointed after 2 statements" true
    (wal_is_empty dir);
  exec_ok s "INSERT INTO t VALUES (2, 1, 20)";
  Alcotest.(check bool) "third statement reopens the log" false
    (wal_is_empty dir);
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check int) "snapshot + 1 replayed" 1 r.Durable.replayed;
  Alcotest.(check int) "rows" 2 (Database.row_count (Durable.db s2) "t");
  Durable.close s2

let test_interrupted_checkpoint () =
  let dir = fresh_dir "interrupted" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  Fault.reset ();
  Fault.arm_nth "wal.truncate" 1;
  (* the snapshot lands, the truncate crashes: the log is now fully
     redundant but still on disk *)
  (match exec_sql s "CHECKPOINT" with
  | Ok _ -> Alcotest.fail "truncate crash should surface"
  | Error e ->
      Alcotest.(check bool) "injected" true
        (contains (Err.to_string e) "injected fault"));
  Fault.reset ();
  Alcotest.(check bool) "log still has the records" false (wal_is_empty dir);
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check bool) "recovery finishes the checkpoint" true
    r.Durable.finished_checkpoint;
  Alcotest.(check int) "nothing replays (snapshot covers the log)" 0
    r.Durable.replayed;
  Alcotest.(check bool) "log truncated now" true (wal_is_empty dir);
  Alcotest.(check int) "rows" 3 (Database.row_count (Durable.db s2) "t");
  Durable.close s2

let test_replay_crash_then_retry () =
  let dir = fresh_dir "replay_crash" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  let before = fingerprint (Durable.db s) in
  Durable.close s;
  Fault.reset ();
  Fault.arm_nth "wal.replay" 2;
  (match Durable.open_ ~dir () with
  | Ok _ -> Alcotest.fail "replay crash should abort recovery"
  | Error e ->
      Alcotest.(check bool) "typed Io" true (Err.kind e = Err.Io));
  Fault.reset ();
  (* a crashed recovery mutated nothing on disk: the retry succeeds and
     lands in exactly the pre-crash state *)
  let s2, r = open_ok dir in
  Alcotest.(check int) "full replay on retry" 3 r.Durable.replayed;
  Alcotest.(check string) "state intact" before (fingerprint (Durable.db s2));
  Durable.close s2

(* ==================== group commit (exec_grouped) ================= *)

let grouped_batch =
  [
    "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, PRIMARY KEY (id))";
    "INSERT INTO t VALUES (1, 1, 10)";
    "INSERT INTO t VALUES (2, 1, 20)";
    "INSERT INTO t VALUES (3, 2, 30)";
    "INSERT INTO t VALUES (4, 2, 40)";
  ]

let test_grouped_basic () =
  let dir = fresh_dir "grouped_basic" in
  let s, _ = open_ok dir in
  let results =
    Durable.exec_grouped s (List.map Parser.parse_statement grouped_batch)
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok _ -> ()
      | Error e ->
          Alcotest.fail (Printf.sprintf "stmt %d: %s" i (Err.to_string e)))
    results;
  Alcotest.(check int) "rows applied" 4 (Database.row_count (Durable.db s) "t");
  Alcotest.(check int) "lsn advanced by the whole batch" 5 (Durable.lsn s);
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check int) "all records replayed" 5 r.Durable.replayed;
  Alcotest.(check int) "rows after recovery" 4
    (Database.row_count (Durable.db s2) "t");
  Durable.close s2

let test_grouped_abort_marker () =
  let dir = fresh_dir "grouped_abort" in
  let s, _ = open_ok dir in
  let batch =
    List.map Parser.parse_statement
      [
        "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, PRIMARY KEY (id))";
        "INSERT INTO t VALUES (1, 1, 10)";
        "INSERT INTO nosuch VALUES (1)";
        "INSERT INTO t VALUES (2, 1, 20)";
      ]
  in
  (match Durable.exec_grouped s batch with
  | [ Ok _; Ok _; Error _; Ok _ ] -> ()
  | rs ->
      Alcotest.fail
        (Printf.sprintf "unexpected result shape (%d results)" (List.length rs)));
  Alcotest.(check int) "good statements applied" 2
    (Database.row_count (Durable.db s) "t");
  Durable.close s;
  let s2, r = open_ok dir in
  Alcotest.(check int) "abort marker honoured on replay" 1
    r.Durable.skipped_aborted;
  Alcotest.(check int) "rows after recovery" 2
    (Database.row_count (Durable.db s2) "t");
  Durable.close s2

(* a failed group-commit fsync fails the WHOLE batch in the living
   session (nothing applied, nothing acked, the handle is poisoned); on
   restart the statements MAY replay, because their records were fully
   written before the fsync — the same durability zone the wal.fsync
   single-statement test pins down *)
let test_grouped_sync_fault () =
  let dir = fresh_dir "grouped_sync" in
  let s, _ = open_ok dir in
  List.iter (exec_ok s) setup_sql;
  Fault.reset ();
  Fault.arm_nth "wal.group_commit" 1;
  let batch =
    List.map Parser.parse_statement
      [ "INSERT INTO t VALUES (4, 2, 40)"; "INSERT INTO t VALUES (5, 2, 50)" ]
  in
  let results = Durable.exec_grouped s batch in
  Fault.reset ();
  List.iter
    (fun r ->
      match r with
      | Ok _ -> Alcotest.fail "a statement of the failed batch was acked"
      | Error e ->
          Alcotest.(check bool) "typed Io" true (Err.kind e = Err.Io))
    results;
  Alcotest.(check int) "nothing applied in the living session" 3
    (Database.row_count (Durable.db s) "t");
  (match exec_sql s "INSERT INTO t VALUES (6, 2, 60)" with
  | Ok _ -> Alcotest.fail "poisoned session accepted a statement"
  | Error _ -> ());
  Durable.close s;
  let s2, _ = open_ok dir in
  Alcotest.(check int) "flushed records replay after restart" 5
    (Database.row_count (Durable.db s2) "t");
  Durable.close s2

(* The torn-batch property: cut the log after a multi-record group
   commit at EVERY byte offset; recovery must always succeed and land
   on exactly the longest valid record prefix (what Wal.scan can still
   read whole), with the torn-tail accounting matching the cut. *)
let test_grouped_torn_prefix () =
  let dir = fresh_dir "grouped_torn" in
  let s, _ = open_ok dir in
  List.iter
    (fun r ->
      match r with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Err.to_string e))
    (Durable.exec_grouped s (List.map Parser.parse_statement grouped_batch));
  Durable.close s;
  let path = Wal.path ~dir in
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let hlen = String.length "eagerdb wal v1\n" in
  for cut = hlen to String.length full - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    let expected_records, expected_dropped =
      match Wal.scan path with
      | Ok (rs, Wal.Complete) -> (List.length rs, 0)
      | Ok (rs, Wal.Torn { dropped; _ }) -> (List.length rs, dropped)
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "cut %d: scan rejected a prefix: %s" cut
               (Err.to_string e))
    in
    let s2, r = open_ok dir in
    Alcotest.(check int)
      (Printf.sprintf "cut %d: replay = longest valid prefix" cut)
      expected_records r.Durable.replayed;
    Alcotest.(check int)
      (Printf.sprintf "cut %d: torn accounting" cut)
      expected_dropped r.Durable.torn_bytes;
    if expected_records > 0 then
      Alcotest.(check int)
        (Printf.sprintf "cut %d: rows = replayed inserts" cut)
        (expected_records - 1)
        (Database.row_count (Durable.db s2) "t");
    Durable.close s2
  done

(* =============== kill/restart matrix: 120 schedules =============== *)

(* A deterministic random workload: inserts with unique keys, updates,
   deletes, occasional statements that refuse to bind (abort-marker
   coverage) and occasional CHECKPOINTs (truncate/persist coverage). *)
let gen_workload seed =
  let g = Gen.make (0x5EED + seed) in
  let next_id = ref 0 in
  let stmt () =
    let d = Gen.int g 100 in
    if d < 50 then begin
      let rows =
        List.init
          (1 + Gen.int g 3)
          (fun _ ->
            incr next_id;
            Printf.sprintf "(%d, %d, %d)" !next_id (Gen.int g 5)
              (Gen.int g 100))
      in
      "INSERT INTO t VALUES " ^ String.concat ", " rows
    end
    else if d < 65 then
      Printf.sprintf "UPDATE t SET val = %d WHERE grp = %d" (Gen.int g 100)
        (Gen.int g 5)
    else if d < 75 then
      Printf.sprintf "DELETE FROM t WHERE val < %d" (Gen.int g 30)
    else if d < 85 then "INSERT INTO nosuch VALUES (1)"
    else "CHECKPOINT"
  in
  "CREATE TABLE t (id INT NOT NULL, grp INT, val INT, PRIMARY KEY (id))"
  :: List.init (8 + Gen.int g 6) (fun _ -> stmt ())

let crash_points =
  [|
    "wal.append"; "wal.fsync"; "wal.truncate"; "wal.replay"; "persist.write";
    "persist.rename";
  |]

(* replay [stmts] into a fresh in-memory database — the oracle for what
   a recovered database must hold.  CHECKPOINT has no logical effect and
   refused statements change nothing (statement atomicity), so simply
   attempting everything in order reproduces the committed state. *)
let oracle_of stmts =
  let db = Database.create () in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.S_checkpoint -> ()
      | _ -> ignore (Binder.exec_statement db stmt))
    stmts;
  db

let run_schedule seed =
  let point = crash_points.(seed mod Array.length crash_points) in
  let nth = 1 + (seed mod 8) in
  let dir = fresh_dir (Printf.sprintf "matrix_%d" seed) in
  let stmts = List.map Parser.parse_statement (gen_workload seed) in
  let label fmt =
    Printf.ksprintf
      (fun m -> Printf.sprintf "seed %d (%s@%d): %s" seed point nth m)
      fmt
  in
  (* phase A: run the workload; crash points other than wal.replay are
     armed here *)
  Fault.reset ();
  let s, _ = open_ok dir in
  if point <> "wal.replay" then Fault.arm_nth point nth;
  let acked = ref [] in
  let crashed = ref None in
  (try
     List.iter
       (fun stmt ->
         match Durable.exec s stmt with
         | Ok _ -> acked := stmt :: !acked
         | Error e when contains (Err.to_string e) "injected fault" ->
             crashed := Some stmt;
             raise Exit
         | Error _ -> (* refused statement; the session continues *) ())
       stmts
   with Exit -> ());
  Fault.reset ();
  Durable.close s;
  let acked = List.rev !acked in
  (* phase B: recovery, optionally crashing (and retrying) mid-replay *)
  if point = "wal.replay" then Fault.arm_nth point nth;
  let s2, _ =
    match Durable.open_ ~dir () with
    | Ok sr -> sr
    | Error e ->
        Alcotest.(check bool)
          (label "recovery failure must be the injected crash")
          true
          (contains (Err.to_string e) "injected fault");
        Fault.reset ();
        open_ok dir
  in
  Fault.reset ();
  (* the oracle: every acknowledged statement, plus — exactly when the
     crash hit after the record was durable (wal.fsync) — the in-flight
     statement, if it applies *)
  let expected_stmts =
    match !crashed with
    | Some stmt when point = "wal.fsync" -> acked @ [ stmt ]
    | _ -> acked
  in
  let expected = fingerprint (oracle_of expected_stmts) in
  Alcotest.(check string)
    (label "recovered state = committed prefix")
    expected
    (fingerprint (Durable.db s2));
  Durable.close s2;
  (* recovery is idempotent: a second restart lands in the same state *)
  let s3, _ = open_ok dir in
  Alcotest.(check string)
    (label "second restart agrees")
    expected
    (fingerprint (Durable.db s3));
  Durable.close s3

let test_matrix () =
  for seed = 0 to 119 do
    run_schedule seed
  done

(* no faults: snapshot + WAL round-trip under the random workload,
   diffed against the in-memory oracle *)
let test_workload_roundtrip () =
  for seed = 200 to 219 do
    let dir = fresh_dir (Printf.sprintf "roundtrip_%d" seed) in
    let stmts = List.map Parser.parse_statement (gen_workload seed) in
    Fault.reset ();
    let s, _ = open_ok dir in
    List.iter (fun stmt -> ignore (Durable.exec s stmt)) stmts;
    Durable.close s;
    let s2, _ = open_ok dir in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: round-trip equals oracle" seed)
      (fingerprint (oracle_of stmts))
      (fingerprint (Durable.db s2));
    Durable.close s2
  done

(* ==================== epochs (failover fencing) =================== *)

(* epochs ride the 6th header field, ratchet monotonically within a log,
   and survive both scan and the dedicated epoch.eagerdb file *)
let test_wal_epoch_roundtrip () =
  let path = wal_file "epoch" in
  let w = ok "open" (Wal.open_append ~path ~next_seq:1 ~epoch:3 ()) in
  Alcotest.(check int) "handle epoch" 3 (Wal.epoch w);
  ignore (ok "a1" (Wal.append w ~kind:Wal.Stmt "CREATE TABLE e (a INT)"));
  Wal.set_epoch w 4;
  Wal.set_epoch w 2 (* epochs only ratchet up; this is a no-op *);
  Alcotest.(check int) "set_epoch ratchets" 4 (Wal.epoch w);
  ignore (ok "a2" (Wal.append w ~kind:Wal.Stmt "INSERT INTO e VALUES (1)"));
  (* a standby re-logs shipped records under the record's own epoch *)
  ignore (ok "a3" (Wal.append ~epoch:7 w ~kind:Wal.Stmt "INSERT INTO e VALUES (2)"));
  Wal.close w;
  let records, tail = ok "scan" (Wal.scan path) in
  Alcotest.(check bool) "complete" true (tail = Wal.Complete);
  Alcotest.(check (list int))
    "epochs survive the round-trip" [ 3; 4; 7 ]
    (List.map (fun (r : Wal.record) -> r.epoch) records);
  (* an epoch that regresses mid-log is corruption, not history *)
  let w = ok "reopen" (Wal.open_append ~path ~next_seq:4 ~epoch:7 ()) in
  ignore (ok "a4" (Wal.append ~epoch:5 w ~kind:Wal.Stmt "INSERT INTO e VALUES (3)"));
  Wal.close w;
  (match Wal.scan path with
  | Error e ->
      Alcotest.(check bool) "names the regression" true
        (contains (Err.to_string e) "epoch regresses")
  | Ok _ -> Alcotest.fail "scan accepted an epoch regression")

(* logs written before failover carry 5-field headers: they scan as
   epoch 0 and stay appendable *)
let test_wal_epoch_legacy () =
  let path = wal_file "epoch_legacy" in
  let payload = "CREATE TABLE l (a INT)" in
  let oc = open_out_bin path in
  output_string oc "eagerdb wal v1\n";
  output_string oc
    (Printf.sprintf "#rec 1 stmt %d %s\n%s\n" (String.length payload)
       (Digest.to_hex (Digest.string payload))
       payload);
  close_out oc;
  let records, tail = ok "scan legacy" (Wal.scan path) in
  Alcotest.(check bool) "complete" true (tail = Wal.Complete);
  Alcotest.(check (list int))
    "legacy headers parse as epoch 0" [ 0 ]
    (List.map (fun (r : Wal.record) -> r.epoch) records)

let test_epoch_file_roundtrip () =
  let dir = fresh_dir "epoch_file" in
  Unix.mkdir dir 0o755;
  Alcotest.(check int) "missing file reads 0" 0
    (ok "load" (Wal.load_epoch ~dir));
  ignore (ok "persist" (Wal.persist_epoch ~dir 6));
  Alcotest.(check int) "round-trip" 6 (ok "reload" (Wal.load_epoch ~dir));
  (* a crash between tmp-write and rename leaves the old epoch in force *)
  Fault.reset ();
  Fault.arm_nth "wal.epoch" 1;
  (match Wal.persist_epoch ~dir 9 with
  | Ok () -> Alcotest.fail "persist should fail at the injected fault"
  | Error _ -> ());
  Fault.reset ();
  Alcotest.(check int) "old epoch survives the crash" 6
    (ok "reload after fault" (Wal.load_epoch ~dir))

(* the session-level story: bump on promotion, recover across reopen
   (including past a checkpoint, which truncates every record), and
   fence stale-epoch ingests *)
let test_durable_epoch_recovery () =
  let dir = fresh_dir "epoch_durable" in
  let s, _ = open_ok dir in
  Alcotest.(check int) "fresh db at epoch 0" 0 (Durable.epoch s);
  List.iter (exec_ok s) setup_sql;
  Alcotest.(check int) "promotion bumps to 1" 1
    (ok "bump" (Durable.bump_epoch s));
  ignore (ok "set" (Durable.set_epoch s 3));
  ignore (ok "set lower (no-op)" (Durable.set_epoch s 1));
  Alcotest.(check int) "ratcheted to 3" 3 (Durable.epoch s);
  exec_ok s "INSERT INTO t VALUES (4, 2, 40)";
  ignore (ok "checkpoint" (Durable.checkpoint s));
  Durable.close s;
  let s2, _ = open_ok dir in
  Alcotest.(check int) "epoch survives checkpoint + reopen" 3
    (Durable.epoch s2);
  Durable.close s2

let test_ingest_epoch_fence () =
  let dir = fresh_dir "epoch_ingest" in
  let s, _ = open_ok dir in
  let mk seq epoch payload = { Wal.seq; kind = Wal.Stmt; payload; epoch } in
  ignore
    (ok "ingest at epoch 2"
       (Durable.ingest s (mk 1 2 "CREATE TABLE t (a INT)")));
  Alcotest.(check int) "higher epoch adopted" 2 (Durable.epoch s);
  (* a record from a fenced (zombie) primary speaks from a lower epoch *)
  (match Durable.ingest s (mk 2 1 "INSERT INTO t VALUES (1)") with
  | Ok () -> Alcotest.fail "ingest accepted a stale-epoch record"
  | Error e ->
      Alcotest.(check bool) "typed Fenced" true (Err.kind e = Err.Fenced);
      Alcotest.(check int) "refused record not applied" 1 (Durable.lsn s));
  ignore
    (ok "same-epoch record lands"
       (Durable.ingest s (mk 2 2 "INSERT INTO t VALUES (1)")));
  Alcotest.(check int) "applied" 2 (Durable.lsn s);
  Durable.close s;
  (* the adopted epoch is durable: a reopen still fences epoch-1 *)
  let s2, _ = open_ok dir in
  Alcotest.(check int) "adopted epoch recovered" 2 (Durable.epoch s2);
  (match Durable.ingest s2 (mk 3 1 "INSERT INTO t VALUES (2)") with
  | Ok () -> Alcotest.fail "reopen forgot the epoch fence"
  | Error e ->
      Alcotest.(check bool) "still typed Fenced" true
        (Err.kind e = Err.Fenced));
  Durable.close s2

(* The fence is the log's record high-water epoch, NOT the node's floor:
   a freshly seeded standby adopts the winner's epoch from its first
   handshake (floor bumps immediately) yet must still ingest the
   older-epoch backlog it is catching up through — the chaos harness's
   kill-and-revive template found this as a livelock (empty WAL, floor
   ahead, every shipped record refused). *)
let test_ingest_backlog_behind_floor () =
  let dir = fresh_dir "epoch_backlog" in
  let s, _ = open_ok dir in
  let mk seq epoch payload = { Wal.seq; kind = Wal.Stmt; payload; epoch } in
  (* the handshake grant: floor jumps to 3 before any record arrives *)
  ignore (ok "adopt the stream's epoch" (Durable.set_epoch s 3));
  Alcotest.(check int) "floor bumped" 3 (Durable.epoch s);
  ignore
    (ok "epoch-0 backlog record lands"
       (Durable.ingest s (mk 1 0 "CREATE TABLE t (a INT)")));
  ignore
    (ok "epoch-2 backlog record lands"
       (Durable.ingest s (mk 2 2 "INSERT INTO t VALUES (1)")));
  (* but history may never regress mid-log *)
  (match Durable.ingest s (mk 3 1 "INSERT INTO t VALUES (2)") with
  | Ok () -> Alcotest.fail "ingest let the log's epoch regress"
  | Error e ->
      Alcotest.(check bool) "typed Fenced" true (Err.kind e = Err.Fenced));
  Alcotest.(check int) "floor survived the backlog" 3 (Durable.epoch s);
  Alcotest.(check int) "backlog applied" 2 (Durable.lsn s);
  Durable.close s;
  (* the caught-up log recovers clean: regression-free by construction *)
  let s2, recovery = open_ok dir in
  Alcotest.(check int) "records replayed" 2 recovery.Durable.replayed;
  Alcotest.(check int) "floor recovered" 3 (Durable.epoch s2);
  Durable.close s2

let () =
  Alcotest.run "durable"
    [
      ( "wal",
        [
          Alcotest.test_case "record round-trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "every prefix is torn, never corrupt" `Quick
            test_wal_torn_prefixes;
          Alcotest.test_case "mid-log corruption rejected" `Quick
            test_wal_corruption;
          Alcotest.test_case "failed write poisons the handle" `Quick
            test_wal_poisoned;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replay restores state" `Quick
            test_basic_recovery;
          Alcotest.test_case "crash mid-append loses the statement" `Quick
            test_append_crash_statement_absent;
          Alcotest.test_case "crash before fsync keeps the record" `Quick
            test_fsync_crash_statement_present;
          Alcotest.test_case "abort markers skip refused statements" `Quick
            test_abort_marker;
          Alcotest.test_case "checkpoint truncates and stamps" `Quick
            test_checkpoint;
          Alcotest.test_case "auto-checkpoint every N" `Quick
            test_auto_checkpoint;
          Alcotest.test_case "interrupted checkpoint completes" `Quick
            test_interrupted_checkpoint;
          Alcotest.test_case "crash mid-replay, retry succeeds" `Quick
            test_replay_crash_then_retry;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "one sync commits the batch" `Quick
            test_grouped_basic;
          Alcotest.test_case "abort markers inside a batch" `Quick
            test_grouped_abort_marker;
          Alcotest.test_case "failed sync fails the whole batch" `Quick
            test_grouped_sync_fault;
          Alcotest.test_case "torn batch recovers the longest valid prefix"
            `Quick test_grouped_torn_prefix;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "wal epoch round-trip + regression rejected"
            `Quick test_wal_epoch_roundtrip;
          Alcotest.test_case "legacy 5-field headers parse as epoch 0" `Quick
            test_wal_epoch_legacy;
          Alcotest.test_case "epoch file round-trip + crashed persist" `Quick
            test_epoch_file_roundtrip;
          Alcotest.test_case "epoch recovery across checkpoint/reopen" `Quick
            test_durable_epoch_recovery;
          Alcotest.test_case "ingest fences stale epochs" `Quick
            test_ingest_epoch_fence;
          Alcotest.test_case "backlog behind the floor still ingests" `Quick
            test_ingest_backlog_behind_floor;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "120 fault-injected kill/restart schedules"
            `Quick test_matrix;
          Alcotest.test_case "random workload round-trip vs oracle" `Quick
            test_workload_roundtrip;
        ] );
    ]
