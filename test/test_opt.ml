(* Optimizer tests: selectivity heuristics, cardinality estimation on the
   paper workloads, cost ordering (Figure 1 vs Figure 8) and the planner's
   combined validity + profitability decision. *)

open Eager_schema
open Eager_expr
open Eager_core
open Eager_opt
open Eager_workload

let cr = Colref.make

(* ---------------- selectivity ---------------- *)

let test_selectivity () =
  let ndv c = if c.Colref.name = "wide" then 100. else 10. in
  let sel = Estimate.selectivity ~ndv in
  let wide = Expr.col "R" "wide" and narrow = Expr.col "R" "narrow" in
  Alcotest.(check (float 1e-9)) "eq const = 1/ndv" 0.01
    (sel (Expr.eq wide (Expr.int 1)));
  Alcotest.(check (float 1e-9)) "eq col-col = 1/max" 0.01
    (sel (Expr.eq wide narrow));
  Alcotest.(check (float 1e-9)) "range = 1/3" (1. /. 3.)
    (sel (Expr.Cmp (Expr.Lt, wide, Expr.int 1)));
  Alcotest.(check (float 1e-9)) "conjunction multiplies" 0.001
    (sel (Expr.And (Expr.eq wide (Expr.int 1), Expr.eq narrow (Expr.int 1))));
  let s_or =
    sel (Expr.Or (Expr.eq wide (Expr.int 1), Expr.eq narrow (Expr.int 1)))
  in
  Alcotest.(check (float 1e-9)) "disjunction incl-excl" (0.01 +. 0.1 -. 0.001) s_or;
  Alcotest.(check (float 1e-9)) "negation" 0.99
    (sel (Expr.Not (Expr.eq wide (Expr.int 1))));
  Alcotest.(check (float 1e-9)) "TRUE" 1.0 (sel Expr.etrue);
  Alcotest.(check (float 1e-9)) "FALSE" 0.0 (sel Expr.efalse)

(* ---------------- estimation on a real workload ---------------- *)

let test_estimates_fig1 () =
  let w = Employee_dept.setup ~employees:2000 ~departments:40 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let e1 = Plans.e1 db q in
  let c_e1 = Estimate.card db e1 in
  (* 40 true groups; the estimator (with exponential backoff over the two
     correlated grouping columns) must land between the department count
     and a small multiple of it, far below the employee count *)
  Alcotest.(check bool)
    (Printf.sprintf "E1 output ≈ departments (got %.0f)" c_e1)
    true
    (c_e1 >= 20. && c_e1 <= 400.);
  let e2 = Plans.e2 db q in
  let c_e2 = Estimate.card db e2 in
  Alcotest.(check bool)
    (Printf.sprintf "E2 output ≈ departments (got %.0f)" c_e2)
    true
    (c_e2 >= 20. && c_e2 <= 400.)

let test_estimate_profile_scan () =
  let w = Employee_dept.setup ~employees:500 ~departments:10 () in
  let db = w.Employee_dept.db in
  let q = w.Employee_dept.query in
  let p = Estimate.profile db (Plans.side1 db q) in
  Alcotest.(check (float 1.0)) "scan card" 500. p.Estimate.card;
  let dept_ndv = Colref.Map.find (cr "E" "DeptID") p.Estimate.ndv in
  Alcotest.(check bool) "DeptID ndv ≈ 10" true (dept_ndv >= 8. && dept_ndv <= 12.)

(* ---------------- cost ordering ---------------- *)

let test_cost_prefers_eager_on_fig1 () =
  let w = Employee_dept.setup () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let c1 = Cost.cost db (Plans.e1 db q) in
  let c2 = Cost.cost db (Plans.e2 db q) in
  Alcotest.(check bool)
    (Printf.sprintf "E2 cheaper on Figure 1 (%.0f vs %.0f)" c2 c1)
    true (c2 < c1)

let test_cost_prefers_lazy_on_fig8 () =
  let w = Contrived.setup () in
  let db = w.Contrived.db and q = w.Contrived.query in
  let c1 = Cost.cost db (Plans.e1 db q) in
  let c2 = Cost.cost db (Plans.e2 db q) in
  Alcotest.(check bool)
    (Printf.sprintf "E1 cheaper on Figure 8 (%.0f vs %.0f)" c1 c2)
    true (c1 < c2)

let test_cost_breakdown () =
  let w = Employee_dept.setup ~employees:100 ~departments:5 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let b = Cost.breakdown db (Plans.e1 db q) in
  Alcotest.(check bool) "total positive" true (b.Cost.total > 0.);
  Alcotest.(check bool) "total bounds node" true (b.Cost.total >= b.Cost.node_cost);
  let text = Format.asprintf "%a" Cost.pp_breakdown b in
  Alcotest.(check bool) "breakdown prints" true (String.length text > 50)

(* ---------------- planner ---------------- *)

let decide_ok db q =
  match Planner.decide db q with
  | Ok d -> d
  | Error e -> Alcotest.fail ("Planner.decide: " ^ Eager_robust.Err.to_string e)

let test_planner_fig1 () =
  let w = Employee_dept.setup () in
  let d = decide_ok w.Employee_dept.db w.Employee_dept.query in
  (match d.Planner.verdict with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "eager plan exists" true (Option.is_some d.Planner.plan_eager);
  (match d.Planner.chosen_kind with
  | Planner.Eager_group -> ()
  | Planner.Lazy_group | Planner.Eager_partial_group ->
      Alcotest.fail "planner should pick E2 on Figure 1")

let test_planner_fig8 () =
  let w = Contrived.setup () in
  let d = decide_ok w.Contrived.db w.Contrived.query in
  (match d.Planner.verdict with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("valid but refused: " ^ r));
  match d.Planner.chosen_kind with
  | Planner.Lazy_group -> ()
  | Planner.Eager_group | Planner.Eager_partial_group ->
      Alcotest.fail "planner should pick E1 on Figure 8"

let test_planner_invalid_query () =
  (* invalid transformation: no eager plan is even proposed *)
  let w = Employee_dept.setup ~employees:200 ~departments:10 () in
  let db = w.Employee_dept.db in
  let q =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "Employee"; rel = "E" };
            { Canonical.table = "Department"; rel = "D" };
          ];
        where = Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID");
        group_by = [ cr "D" "Name" ];
        select_cols = [ cr "D" "Name" ];
        select_aggs =
          [ Eager_algebra.Agg.count (cr "" "n") (Expr.col "E" "EmpID") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [];
      }
  in
  let d = decide_ok db q in
  Alcotest.(check bool) "no full eager plan" true
    (Option.is_none d.Planner.plan_eager);
  (match d.Planner.chosen_kind with
  | Planner.Eager_group ->
      Alcotest.fail "full E2 must not be chosen when TestFD says NO"
  | Planner.Lazy_group | Planner.Eager_partial_group -> ());
  (* the unverified full rewrite never even appears among the candidates *)
  Alcotest.(check bool) "no full-E2 candidate" true
    (List.for_all
       (fun (p : Placement.t) -> p.Placement.mode <> Placement.Eager_full)
       d.Planner.candidates);
  (* the partial rewrite needs no FD check, so it may (and here does)
     still beat E1 *)
  Alcotest.(check bool) "a partial candidate was enumerated" true
    (List.exists
       (fun (p : Placement.t) -> p.Placement.mode = Placement.Eager_partial)
       d.Planner.candidates);
  let text = Explain.text db d in
  Alcotest.(check bool) "explain prints" true (String.length text > 20)

(* ---------------- unique-group detection (Klug/Dayal) ---------------- *)

let unique_db () =
  let w = Employee_dept.setup ~employees:300 ~departments:12
      ~null_dept_fraction:0.1 () in
  w.Employee_dept.db

let scan db table rel =
  let td =
    Option.get (Eager_catalog.Catalog.find_table (Eager_storage.Database.catalog db) table)
  in
  Eager_algebra.Plan.scan ~table ~rel (Eager_catalog.Table_def.schema ~rel td)

let test_unique_group_detection () =
  let open Eager_algebra in
  let db = unique_db () in
  let e = scan db "Employee" "E" and d = scan db "Department" "D" in
  let join =
    Plan.join (Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID")) e d
  in
  (* grouping a single table on its primary key: unique *)
  Alcotest.(check bool) "PK grouping is unique" true
    (Unique_group.groups_are_unique db ~by:[ cr "E" "EmpID" ] e);
  (* grouping the join on the outer key: the equality reaches D's key *)
  Alcotest.(check bool) "join grouped on E's key is unique" true
    (Unique_group.groups_are_unique db ~by:[ cr "E" "EmpID" ] join);
  (* non-key grouping is not *)
  Alcotest.(check bool) "non-key grouping not unique" false
    (Unique_group.groups_are_unique db ~by:[ cr "E" "DeptID" ] e);
  (* a key of only one side does not cover the join *)
  Alcotest.(check bool) "D's key alone does not cover the join" false
    (Unique_group.groups_are_unique db ~by:[ cr "D" "DeptID" ]
       (Plan.Product (e, d)))

let test_unique_group_execution_agrees () =
  let open Eager_algebra in
  let open Eager_exec in
  let db = unique_db () in
  let e = scan db "Employee" "E" and d = scan db "Department" "D" in
  let join =
    Plan.join (Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID")) e d
  in
  let g =
    Plan.group
      ~by:[ cr "E" "EmpID"; cr "D" "Name" ]
      ~aggs:[ Eager_algebra.Agg.count_star (cr "" "n") ]
      join
  in
  let marked = Unique_group.mark db g in
  (match marked with
  | Plan.Group { unique_groups = true; _ } -> ()
  | _ -> Alcotest.fail "expected the group to be marked unique");
  let rows = Exec.run_rows db g in
  let rows' = Exec.run_rows db marked in
  Alcotest.(check bool) "fast path agrees" true (Exec.multiset_equal rows rows');
  (* every group really is a singleton *)
  Alcotest.(check bool) "all counts are 1" true
    (List.for_all
       (fun row ->
         Eager_value.Value.null_eq row.(Array.length row - 1) (Eager_value.Value.Int 1))
       rows')

let test_unique_group_nested () =
  let open Eager_algebra in
  let db = unique_db () in
  let e = scan db "Employee" "E" in
  (* a grouped output is keyed by its grouping columns: re-grouping on the
     same columns is provably singleton *)
  let inner =
    Plan.group ~by:[ cr "E" "DeptID" ]
      ~aggs:[ Eager_algebra.Agg.count_star (cr "" "n") ]
      e
  in
  Alcotest.(check bool) "regroup on group keys is unique" true
    (Unique_group.groups_are_unique db ~by:[ cr "E" "DeptID" ] inner);
  (* grouping the inner result on the aggregate output alone is not *)
  Alcotest.(check bool) "grouping on the aggregate output is not" false
    (Unique_group.groups_are_unique db ~by:[ cr "" "n" ] inner);
  (* a scalar group is a single row: anything over it is unique *)
  let scalar =
    Plan.group ~scalar:true ~by:[]
      ~aggs:[ Eager_algebra.Agg.count_star (cr "" "total") ]
      e
  in
  Alcotest.(check bool) "over a scalar group" true
    (Unique_group.groups_are_unique db ~by:[ cr "" "total" ] scalar)

let test_unique_group_not_marked_when_unsound () =
  let open Eager_algebra in
  let open Eager_exec in
  let db = unique_db () in
  let e = scan db "Employee" "E" in
  (* grouping on DeptID: multi-row groups; mark must not fire, and results
     must stay correct *)
  let g =
    Plan.group ~by:[ cr "E" "DeptID" ]
      ~aggs:[ Eager_algebra.Agg.count_star (cr "" "n") ]
      e
  in
  (match Unique_group.mark db g with
  | Plan.Group { unique_groups = false; _ } -> ()
  | _ -> Alcotest.fail "must not mark non-key grouping");
  let rows = Exec.run_rows db g in
  Alcotest.(check bool) "multi-row groups exist" true
    (List.exists
       (fun row ->
         match row.(Array.length row - 1) with
         | Eager_value.Value.Int n -> n > 1
         | _ -> false)
       rows)

(* histogram-aware range selectivity: a skewed column's estimate must beat
   the uniform 1/3 guess *)
let test_histogram_selectivity () =
  let open Eager_catalog in
  let open Eager_storage in
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Sk"
       [ { Table_def.cname = "v"; ctype = Eager_schema.Ctype.Int; domain = None } ]
       []);
  for i = 0 to 89 do
    Database.insert_exn db "Sk" [ Eager_value.Value.Int (i mod 10) ]
  done;
  for i = 0 to 9 do
    Database.insert_exn db "Sk" [ Eager_value.Value.Int (90 + i) ]
  done;
  let td = Option.get (Catalog.find_table (Database.catalog db) "Sk") in
  let scan = Eager_algebra.Plan.scan ~table:"Sk" ~rel:"S" (Table_def.schema ~rel:"S" td) in
  let sel =
    Eager_algebra.Plan.select
      (Expr.Cmp (Expr.Lt, Expr.col "S" "v", Expr.int 50))
      scan
  in
  let est = Estimate.card db sel in
  let actual =
    float_of_int (List.length (Eager_exec.Exec.run_rows db sel))
  in
  Alcotest.(check (float 1e-9)) "actual is 90" 90. actual;
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within 15%% of 90" est)
    true
    (est > 76. && est < 104.);
  (* the other side of the skew *)
  let sel_hi =
    Eager_algebra.Plan.select
      (Expr.Cmp (Expr.Ge, Expr.col "S" "v", Expr.int 50))
      scan
  in
  let est_hi = Estimate.card db sel_hi in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f near 10" est_hi)
    true
    (est_hi > 2. && est_hi < 25.)

(* ---------------- DP join ordering ---------------- *)

(* A(60) and B(60) each join the 5-row C; written in the FROM order A, B, C
   the greedy builder starts with the cross product A×B.  The DP enumerator
   must find an order that joins through C instead. *)
let star_db () =
  let open Eager_catalog in
  let open Eager_storage in
  let coldef name ctype : Table_def.column_def =
    { Table_def.cname = name; ctype; domain = None }
  in
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "C" [ coldef "id" Eager_schema.Ctype.Int ]
       [ Constr.Primary_key [ "id" ] ]);
  Database.create_table db
    (Table_def.make "A"
       [ coldef "aid" Eager_schema.Ctype.Int; coldef "c" Eager_schema.Ctype.Int ]
       [ Constr.Primary_key [ "aid" ] ]);
  Database.create_table db
    (Table_def.make "B"
       [ coldef "bid" Eager_schema.Ctype.Int; coldef "c" Eager_schema.Ctype.Int ]
       [ Constr.Primary_key [ "bid" ] ]);
  for i = 1 to 5 do
    Database.insert_exn db "C" [ Eager_value.Value.Int i ]
  done;
  for i = 1 to 60 do
    Database.insert_exn db "A"
      [ Eager_value.Value.Int i; Eager_value.Value.Int (1 + (i mod 5)) ];
    Database.insert_exn db "B"
      [ Eager_value.Value.Int i; Eager_value.Value.Int (1 + (i mod 5)) ]
  done;
  let sources =
    [
      { Canonical.table = "A"; rel = "A" };
      { Canonical.table = "B"; rel = "B" };
      { Canonical.table = "C"; rel = "C" };
    ]
  in
  let conjuncts =
    [
      Expr.eq (Expr.col "A" "c") (Expr.col "C" "id");
      Expr.eq (Expr.col "B" "c") (Expr.col "C" "id");
    ]
  in
  (db, sources, conjuncts)

let test_join_order_beats_greedy () =
  let db, sources, conjuncts = star_db () in
  let greedy = Plans.join_tree db sources conjuncts in
  let dp = Join_order.best_tree db sources conjuncts in
  let cg = Cost.cost db greedy and cd = Cost.cost db dp in
  Alcotest.(check bool)
    (Printf.sprintf "DP (%.0f) beats greedy (%.0f)" cd cg)
    true (cd < cg);
  (* the greedy plan contains a cross product; the DP plan must not *)
  let rec has_product = function
    | Eager_algebra.Plan.Product _ -> true
    | Eager_algebra.Plan.Scan _ -> false
    | Eager_algebra.Plan.Select { input; _ }
    | Eager_algebra.Plan.Project { input; _ }
    | Eager_algebra.Plan.Group { input; _ }
    | Eager_algebra.Plan.Partial_group { input; _ }
    | Eager_algebra.Plan.Sort { input; _ }
    | Eager_algebra.Plan.Map { input; _ } ->
        has_product input
    | Eager_algebra.Plan.Join { left; right; _ } ->
        has_product left || has_product right
  in
  Alcotest.(check bool) "greedy has the cross product" true (has_product greedy);
  Alcotest.(check bool) "DP avoids it" false (has_product dp);
  (* and both compute the same multiset *)
  let rg = Eager_exec.Exec.run_rows db greedy in
  let rd = Eager_exec.Exec.run_rows db dp in
  (* column orders differ between trees, so compare projected *)
  let proj plan rows =
    let schema = Eager_algebra.Plan.schema_of plan in
    let cols =
      List.sort Colref.compare (Eager_schema.Schema.colrefs schema)
    in
    let idxs = Eager_schema.Schema.indices schema cols in
    List.map (Eager_schema.Row.project idxs) rows
  in
  Alcotest.(check bool) "same result" true
    (Eager_exec.Exec.multiset_equal (proj greedy rg) (proj dp rd))

let test_planner_uses_dp_for_wide_sides () =
  let db, _, _ = star_db () in
  (* a grouping dimension so the query enters the canonical class with
     R1 = {A, B, C} (three tables) and R2 = {G} *)
  let open Eager_catalog in
  let open Eager_storage in
  let coldef name ctype : Table_def.column_def =
    { Table_def.cname = name; ctype; domain = None }
  in
  Database.create_table db
    (Table_def.make "G"
       [ coldef "gid" Eager_schema.Ctype.Int; coldef "cid" Eager_schema.Ctype.Int ]
       [ Constr.Primary_key [ "gid" ] ]);
  for g = 1 to 5 do
    Database.insert_exn db "G" [ Eager_value.Value.Int g; Eager_value.Value.Int g ]
  done;
  let q =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "A"; rel = "A" };
            { Canonical.table = "B"; rel = "B" };
            { Canonical.table = "C"; rel = "C" };
            { Canonical.table = "G"; rel = "G" };
          ];
        where =
          Expr.conj
            [
              Expr.eq (Expr.col "A" "c") (Expr.col "C" "id");
              Expr.eq (Expr.col "B" "c") (Expr.col "C" "id");
              Expr.eq (Expr.col "C" "id") (Expr.col "G" "cid");
            ];
        group_by = [ cr "G" "gid" ];
        select_cols = [ cr "G" "gid" ];
        select_aggs =
          [
            Eager_algebra.Agg.count (cr "" "na") (Expr.col "A" "aid");
            Eager_algebra.Agg.max_ (cr "" "mb") (Expr.col "B" "bid");
          ];
        select_distinct = false;
        select_having = None;
        r1_hint = [ "C" ];
      }
  in
  Alcotest.(check int) "three tables on R1" 3 (List.length q.Canonical.r1);
  let d = decide_ok db q in
  let rec has_product = function
    | Eager_algebra.Plan.Product _ -> true
    | Eager_algebra.Plan.Scan _ -> false
    | Eager_algebra.Plan.Select { input; _ }
    | Eager_algebra.Plan.Project { input; _ }
    | Eager_algebra.Plan.Group { input; _ }
    | Eager_algebra.Plan.Partial_group { input; _ }
    | Eager_algebra.Plan.Sort { input; _ }
    | Eager_algebra.Plan.Map { input; _ } ->
        has_product input
    | Eager_algebra.Plan.Join { left; right; _ } ->
        has_product left || has_product right
  in
  Alcotest.(check bool) "planner's lazy plan avoids the cross product" false
    (has_product d.Planner.plan_lazy);
  Alcotest.(check bool) "greedy FROM-order plan had one" true
    (has_product (Plans.e1 db q));
  (* and the DP-ordered plan computes the same result *)
  let r_dp = Eager_exec.Exec.run_rows db d.Planner.plan_lazy in
  let r_greedy = Eager_exec.Exec.run_rows db (Plans.e1 db q) in
  Alcotest.(check bool) "same result" true
    (Eager_exec.Exec.multiset_equal r_dp r_greedy)

let test_join_order_single_and_fallback () =
  let db, sources, conjuncts = star_db () in
  (* single relation: just the filtered scan *)
  (match Join_order.best_tree db [ List.hd sources ] [] with
  | Eager_algebra.Plan.Scan _ -> ()
  | _ -> Alcotest.fail "single source should be a scan");
  (* over budget: falls back to the greedy tree (still executable) *)
  let p = Join_order.best_tree ~max_relations:2 db sources conjuncts in
  Alcotest.(check bool) "fallback executes" true
    (List.length (Eager_exec.Exec.run_rows db p) > 0)

let () =
  Alcotest.run "opt"
    [
      ("selectivity", [ Alcotest.test_case "heuristics" `Quick test_selectivity ]);
      ( "estimation",
        [
          Alcotest.test_case "Figure 1 outputs" `Quick test_estimates_fig1;
          Alcotest.test_case "scan profile" `Quick test_estimate_profile_scan;
          Alcotest.test_case "histogram range selectivity" `Quick
            test_histogram_selectivity;
        ] );
      ( "cost",
        [
          Alcotest.test_case "Figure 1 favours eager" `Quick
            test_cost_prefers_eager_on_fig1;
          Alcotest.test_case "Figure 8 favours lazy" `Quick
            test_cost_prefers_lazy_on_fig8;
          Alcotest.test_case "breakdown" `Quick test_cost_breakdown;
        ] );
      ( "planner",
        [
          Alcotest.test_case "Figure 1 decision" `Quick test_planner_fig1;
          Alcotest.test_case "Figure 8 decision" `Quick test_planner_fig8;
          Alcotest.test_case "invalid query fallback" `Quick
            test_planner_invalid_query;
        ] );
      ( "join order",
        [
          Alcotest.test_case "DP beats greedy on a star" `Quick
            test_join_order_beats_greedy;
          Alcotest.test_case "degenerate cases" `Quick
            test_join_order_single_and_fallback;
          Alcotest.test_case "planner uses DP on wide sides" `Quick
            test_planner_uses_dp_for_wide_sides;
        ] );
      ( "unique groups",
        [
          Alcotest.test_case "detection" `Quick test_unique_group_detection;
          Alcotest.test_case "fast path agrees" `Quick
            test_unique_group_execution_agrees;
          Alcotest.test_case "soundness guard" `Quick
            test_unique_group_not_marked_when_unsound;
          Alcotest.test_case "nested groups" `Quick test_unique_group_nested;
        ] );
    ]
