(* Robustness tests: the typed error channel, the fault-injection
   harness (100+ seeded schedules), write atomicity under injected
   crashes, the resource governor, planner degradation to E1, crash-safe
   snapshots, corruption rejection, and derived-index eviction on
   drop/recreate. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_exec
open Eager_core
open Eager_opt
open Eager_parser
open Eager_robust
open Eager_workload

let cr = Colref.make
let i n = Value.Int n

let coldef name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  go 0

let check_contains name sub s =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S in %S" name sub s)
    true (contains s sub)

let decide_ok ?governor db q =
  match Planner.decide ?governor db q with
  | Ok d -> d
  | Error e -> Alcotest.fail ("Planner.decide: " ^ Err.to_string e)

let check_kind name kind = function
  | Ok _ -> Alcotest.fail (name ^ ": expected Error, got Ok")
  | Error e ->
      Alcotest.(check string)
        (name ^ ": error kind")
        (Err.kind_to_string kind)
        (Err.kind_to_string (Err.kind e))

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

(* K(id PK, v) with two rows — the victim table for write faults *)
let small_db () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "K"
       [ coldef "id" Ctype.Int; coldef "v" Ctype.Int ]
       [ Constr.Primary_key [ "id" ] ]);
  Database.load db "K" [ [ i 1; i 10 ]; [ i 2; i 20 ] ];
  db

let k_schema =
  Schema.make [ (cr "K" "id", Ctype.Int); (cr "K" "v", Ctype.Int) ]

let scan_k = Plan.scan ~table:"K" ~rel:"K" k_schema
let k_len db = Heap.length (Database.heap db "K")

let select db sql =
  match Binder.bind_select db (Parser.parse_select sql) with
  | Error msg -> Alcotest.fail ("bind: " ^ msg)
  | Ok b -> (
      match Binder.to_plan db b with
      | Error msg -> Alcotest.fail ("plan: " ^ msg)
      | Ok plan -> Exec.run_rows db plan)

(* ---------------- the error channel itself ---------------- *)

let test_err_channel () =
  let e = Err.add_context "loading x" (Err.storage "boom %d" 7) in
  Alcotest.(check string) "to_string" "[Storage] boom 7 (while loading x)"
    (Err.to_string e);
  List.iter
    (fun (point, kind) ->
      Alcotest.(check string)
        ("of_fault " ^ point)
        (Err.kind_to_string kind)
        (Err.kind_to_string (Err.kind (Err.of_fault point))))
    [
      ("storage.write", Err.Storage);
      ("heap.append", Err.Storage);
      ("persist.rename", Err.Io);
      ("exec.next", Err.Exec);
      ("opt.testfd", Err.Planner);
      ("repl.send", Err.Io);
      ("repl.recv", Err.Io);
      ("backup.copy", Err.Io);
    ];
  (* protect adopts every escape hatch *)
  check_kind "legacy failwith" Err.Exec
    (Err.protect ~kind:Err.Exec (fun () -> failwith "legacy"));
  check_kind "Error_exn" Err.Resource
    (Err.protect ~kind:Err.Exec (fun () ->
         Err.raise_ (Err.resource "budget")));
  check_kind "Fault_injected" Err.Io
    (Err.protect ~kind:Err.Exec (fun () ->
         raise (Err.Fault_injected "persist.write")));
  check_kind "Sys_error" Err.Io
    (Err.protect ~kind:Err.Exec (fun () ->
         ignore (open_in "/nonexistent/robust"); ()))

(* ------------------- clock monotonicity (failover) ------------------ *)

(* The failover machinery (lease deadlines, election backoff) trusts
   [Clock.now_ms] never to step backwards.  The [clock.jump] fault
   subtracts 10 s from the raw wall sample before monotonisation — a
   fake NTP correction the high-water clamp must absorb. *)
let test_clock_monotone_under_jumps () =
  Fault.reset ();
  (* establish a high-water mark with the fault disarmed *)
  let base = Clock.now_ms () in
  (* every subsequent sample jumps 10 s backwards *)
  Fault.arm_seeded ~seed:11 ~rate:1.0 ~points:[ "clock.jump" ] ();
  let prev = ref base in
  for i = 1 to 200 do
    let t = Clock.now_ms () in
    if t < !prev then
      Alcotest.fail
        (Printf.sprintf
           "clock stepped backwards at sample %d: %.3f after %.3f" i t !prev);
    prev := t
  done;
  Fault.reset ();
  (* disarmed again: the clock resumes real time without a discontinuity
     below the water mark *)
  let after = Clock.now_ms () in
  Alcotest.(check bool) "post-fault sample not below the mark" true
    (after >= !prev);
  Alcotest.(check bool) "post-fault sample not below pre-fault time" true
    (after >= base);
  (* seeded sub-1.0 rates interleave jumped and honest samples; the
     clamp must hold across the mix as well *)
  Fault.arm_seeded ~seed:23 ~rate:0.4 ~points:[ "clock.jump" ] ();
  let prev = ref (Clock.now_ms ()) in
  for _ = 1 to 200 do
    let t = Clock.now_ms () in
    Alcotest.(check bool) "mixed schedule stays monotone" true (t >= !prev);
    prev := t
  done;
  Fault.reset ()

let test_registry () =
  Alcotest.(check (slist string compare))
    "every compiled-in point is registered"
    [
      "storage.write"; "heap.append"; "persist.rename"; "persist.write";
      "exec.next"; "opt.testfd"; "opt.cost"; "wal.append"; "wal.fsync";
      "wal.truncate"; "wal.replay"; "wal.group_commit"; "server.accept";
      "server.read"; "repl.send"; "repl.recv"; "backup.copy";
      "repl.lease"; "server.election"; "wal.epoch"; "clock.jump";
      "wal.slow_fsync"; "storage.page_read"; "storage.page_write";
      "exec.spill";
    ]
    Fault.all_points

(* ---------------- each point fires as a typed error ---------------- *)

let test_points_fire () =
  let db = small_db () in
  let fire point f =
    Fault.reset ();
    Fault.arm_nth point 1;
    let r = f () in
    Alcotest.(check bool) (point ^ " disarmed after firing") false
      (Fault.armed ());
    (match r with
    | Ok _ -> Alcotest.fail (point ^ ": expected a typed error")
    | Error e -> check_contains point "injected fault" (Err.to_string e));
    Fault.reset ();
    r
  in
  ignore
    (fire "storage.write" (fun () ->
         Database.insert_result db "K" [ i 9; i 90 ]));
  Alcotest.(check int) "no partial insert (storage.write)" 2 (k_len db);
  ignore
    (fire "heap.append" (fun () ->
         Database.insert_result db "K" [ i 9; i 90 ]));
  Alcotest.(check int) "no partial insert (heap.append)" 2 (k_len db);
  check_kind "exec.next is Exec" Err.Exec
    (fire "exec.next" (fun () -> Exec.run_checked db scan_k));
  let dir = tmpdir "eagerdb_robust_points" in
  check_kind "persist.write is Io" Err.Io
    (fire "persist.write" (fun () -> Persist.save db ~dir));
  check_kind "persist.rename is Io" Err.Io
    (fire "persist.rename" (fun () -> Persist.save db ~dir));
  (* the database is untouched by all of the above *)
  Alcotest.(check int) "table intact" 2 (k_len db);
  (* paged IO points fire through the buffer pool and the spill store *)
  let pool = Buffer_pool.create () in
  let pgr = Pager.create_mem ~page_size:256 () in
  let pid = Buffer_pool.append_page pool pgr [| [| i 1; i 2 |] |] in
  check_kind "storage.page_write is Storage" Err.Storage
    (fire "storage.page_write" (fun () ->
         Err.protect ~kind:Err.Storage (fun () ->
             Buffer_pool.append_page pool pgr [| [| i 3; i 4 |] |])));
  check_kind "storage.page_read is Storage" Err.Storage
    (fire "storage.page_read" (fun () ->
         Err.protect ~kind:Err.Storage (fun () ->
             Buffer_pool.read_page pool pgr pid)));
  check_kind "exec.spill is Exec" Err.Exec
    (fire "exec.spill" (fun () ->
         Err.protect ~kind:Err.Exec (fun () ->
             let scratch = Pager.create_mem ~page_size:256 () in
             let sp =
               Spill.make ~pool ~scratch ~budget_pages:2 ~page_rows:4
             in
             Fun.protect
               ~finally:(fun () ->
                 Spill.cleanup sp;
                 Pager.close scratch)
               (fun () ->
                 let n = ref 0 in
                 let input () =
                   if !n < 200 then begin
                     incr n;
                     Some [| i !n |]
                   end
                   else None
                 in
                 let out = Spill.sort sp ~cmp:compare input in
                 let rec drain () =
                   match out () with Some _ -> drain () | None -> ()
                 in
                 drain ()))))

(* ------------- write atomicity under injected crashes ------------- *)

let test_write_atomicity () =
  let db = small_db () in
  let before = Heap.to_list (Database.heap db "K") in
  let id1 = Expr.eq (Expr.col "K" "id") (Expr.int 1) in
  Fault.reset ();
  (* delete: fault before the heap mutation *)
  Fault.arm_nth "storage.write" 1;
  (match Database.delete db "K" ~where:id1 () with
  | Ok _ -> Alcotest.fail "delete should have been aborted"
  | Error e -> check_contains "delete abort" "injected fault" (Err.to_string e));
  Alcotest.(check bool) "delete aborted, rows intact" true
    (Exec.multiset_equal before (Heap.to_list (Database.heap db "K")));
  (* update goes through Heap.replace_all: all-or-nothing swap *)
  Fault.reset ();
  Fault.arm_nth "heap.append" 1;
  (match
     Database.update db "K" ~set:[ ("v", Expr.int 99) ] ~where:id1 ()
   with
  | Ok _ -> Alcotest.fail "update should have been aborted"
  | Error e -> check_contains "update abort" "injected fault" (Err.to_string e));
  Alcotest.(check bool) "update aborted, rows intact" true
    (Exec.multiset_equal before (Heap.to_list (Database.heap db "K")));
  Fault.reset ();
  (* with nothing armed, the same statements go through *)
  (match Database.update db "K" ~set:[ ("v", Expr.int 99) ] ~where:id1 () with
  | Ok n -> Alcotest.(check int) "update applies after disarm" 1 n
  | Error e -> Alcotest.fail (Err.to_string e));
  match Database.delete db "K" ~where:id1 () with
  | Ok n -> Alcotest.(check int) "delete applies after disarm" 1 n
  | Error e -> Alcotest.fail (Err.to_string e)

(* ---------------- 120 seeded random schedules ---------------- *)

let test_random_schedules () =
  let w = Employee_dept.setup ~employees:80 ~departments:8 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let victim = small_db () in
  let emp_len () = Heap.length (Database.heap db "Employee") in
  let oks = ref 0 and errs = ref 0 and fired = ref 0 in
  let next_id = ref 100 and expected = ref (k_len victim) in
  let attempt f =
    match Err.protect ~kind:Err.Exec f with
    | Ok _ -> incr oks
    | Error _ -> incr errs
  in
  for seed = 0 to 119 do
    (try
       Fault.with_seeded ~seed ~rate:0.003 (fun () ->
           attempt (fun () -> Exec.run_rows db (Plans.e1 db q));
           attempt (fun () -> Exec.run_rows db (Plans.e2 db q));
           attempt (fun () ->
               match Planner.decide db q with
               | Ok d -> d
               | Error e -> Err.raise_ e);
           (* a write either lands wholly or not at all *)
           (match Database.insert_result victim "K" [ i !next_id; i 0 ] with
           | Ok () ->
               incr next_id;
               incr expected
           | Error _ -> ());
           Alcotest.(check int)
             (Printf.sprintf "seed %d: no partial write" seed)
             !expected (k_len victim);
           fired := !fired + Fault.fired_count ())
     with exn ->
       Alcotest.fail
         (Printf.sprintf "seed %d leaked exception: %s" seed
            (Printexc.to_string exn)));
    (* read-only queries never touch base tables, even when aborted *)
    Alcotest.(check int)
      (Printf.sprintf "seed %d: workload tables intact" seed)
      80 (emp_len ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "schedules actually injected (fired %d)" !fired)
    true (!fired > 0);
  Alcotest.(check bool)
    (Printf.sprintf "mixed outcomes (ok %d, err %d)" !oks !errs)
    true
    (!oks > 0 && !errs > 0);
  (* the session is healthy after all 120 schedules *)
  Fault.reset ();
  (match Database.insert_result victim "K" [ i !next_id; i 0 ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("post-run insert: " ^ Err.to_string e));
  Alcotest.(check int) "post-run scan" (!expected + 1) (k_len victim)

(* ---------------- resource governor ---------------- *)

let test_governor () =
  let w = Employee_dept.setup ~employees:400 ~departments:10 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let e1 = Plans.e1 db q and e2 = Plans.e2 db q in
  let lim l = { Exec.default_options with Exec.governor = Governor.create l } in
  let r =
    Exec.run_rows_checked
      ~options:(lim { Governor.no_limits with Governor.max_rows = Some 50 })
      db e1
  in
  check_kind "max_rows breach" Err.Resource r;
  (match r with
  | Error e -> check_contains "max_rows message" "row budget" (Err.msg e)
  | Ok _ -> ());
  let r =
    Exec.run_rows_checked
      ~options:(lim { Governor.no_limits with Governor.max_groups = Some 2 })
      db e2
  in
  check_kind "max_groups breach" Err.Resource r;
  (match r with
  | Error e -> check_contains "max_groups message" "aggregation" (Err.msg e)
  | Ok _ -> ());
  let r =
    Exec.run_rows_checked
      ~options:(lim { Governor.no_limits with Governor.deadline_ms = Some 0. })
      db e1
  in
  check_kind "deadline breach" Err.Resource r;
  (match r with
  | Error e -> check_contains "deadline message" "deadline" (Err.msg e)
  | Ok _ -> ());
  (* the aborted statements left the session fully usable *)
  Alcotest.(check int) "base table intact" 400
    (Heap.length (Database.heap db "Employee"));
  match Exec.run_rows_checked db e1 with
  | Ok rows ->
      Alcotest.(check int) "unlimited rerun groups" 10 (List.length rows)
  | Error e -> Alcotest.fail ("unlimited rerun: " ^ Err.to_string e)

(* ---------------- planner degradation ---------------- *)

let test_planner_fallback () =
  let w = Employee_dept.setup ~employees:200 ~departments:10 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  Fault.reset ();
  let d0 = decide_ok db q in
  Alcotest.(check bool) "healthy decide has no fallback" true
    (d0.Planner.fallback = None);
  let demoted name =
    let d = decide_ok db q in
    Fault.reset ();
    check_contains (name ^ " demotes to E1") "E1"
      (Planner.kind_to_string d.Planner.chosen_kind);
    Alcotest.(check bool) (name ^ " records a reason") true
      (d.Planner.fallback <> None);
    check_contains (name ^ " explain") "fallback" (Explain.text db d)
  in
  Fault.arm_nth "opt.testfd" 1;
  demoted "opt.testfd fault";
  Fault.arm_nth "opt.cost" 1;
  demoted "opt.cost fault";
  (* a blown deadline during optimization demotes instead of aborting *)
  let gov =
    Governor.create { Governor.no_limits with Governor.deadline_ms = Some 0. }
  in
  let d = decide_ok ~governor:gov db q in
  Alcotest.(check bool) "deadline demotes" true (d.Planner.fallback <> None);
  (* decide survives even an unplannable query *)
  match Planner.decide db q with
  | Ok d -> Alcotest.(check bool) "checked healthy" true (d.Planner.fallback = None)
  | Error e -> Alcotest.fail (Err.to_string e)

let test_testfd_unknown_table () =
  let w = Employee_dept.setup ~employees:20 ~departments:4 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  (match Database.drop_table db "Department" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  match Testfd.test db q with
  | Testfd.Yes -> Alcotest.fail "TestFD said YES about a missing table"
  | Testfd.No reason -> check_contains "verdict" "cannot verify" reason

(* ---------------- crash-safe persistence ---------------- *)

let test_crash_safe_save () =
  let db = small_db () in
  let dir = tmpdir "eagerdb_robust_crash" in
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("first save: " ^ Err.to_string e));
  (match Database.insert_result db "K" [ i 3; i 30 ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  let old_loadable name =
    match Persist.load ~dir () with
    | Ok db' ->
        Alcotest.(check int) (name ^ ": previous snapshot intact") 2
          (k_len db')
    | Error e -> Alcotest.fail (name ^ ": " ^ Err.to_string e)
  in
  List.iter
    (fun point ->
      Fault.reset ();
      Fault.arm_nth point 1;
      (match Persist.save db ~dir with
      | Ok () -> Alcotest.fail (point ^ ": save should have failed")
      | Error e -> check_contains point "injected fault" (Err.to_string e));
      Fault.reset ();
      old_loadable ("after " ^ point))
    [ "persist.write"; "persist.rename" ];
  (* and the next unarmed save publishes the new state atomically *)
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("final save: " ^ Err.to_string e));
  match Persist.load ~dir () with
  | Ok db' -> Alcotest.(check int) "new snapshot visible" 3 (k_len db')
  | Error e -> Alcotest.fail (Err.to_string e)

let test_snapshot_corruption () =
  let db = small_db () in
  let dir = tmpdir "eagerdb_robust_corrupt" in
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  let file = Filename.concat dir "snapshot.eagerdb" in
  let original =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let len = String.length original in
  let flipped =
    let b = Bytes.of_string original in
    let k = len / 2 in
    Bytes.set b k (if Bytes.get b k = 'x' then 'y' else 'x');
    Bytes.to_string b
  in
  let cases =
    [
      ("empty file", "");
      ("truncated header", String.sub original 0 10);
      ("torn mid-file", String.sub original 0 (len / 2));
      ("checksum line cut off", String.sub original 0 (len - 44));
      ("flipped byte", flipped);
      ("trailing garbage", original ^ "junk\n");
    ]
  in
  List.iter
    (fun (name, content) ->
      let oc = open_out_bin file in
      output_string oc content;
      close_out oc;
      match Persist.load ~dir () with
      | Ok _ -> Alcotest.fail (name ^ ": corrupted snapshot was accepted")
      | Error e -> check_kind name Err.Io (Error e))
    cases;
  (* restoring the bytes restores loadability: rejection was content-based *)
  let oc = open_out_bin file in
  output_string oc original;
  close_out oc;
  match Persist.load ~dir () with
  | Ok db' -> Alcotest.(check int) "restored snapshot loads" 2 (k_len db')
  | Error e -> Alcotest.fail (Err.to_string e)

(* ---------------- index eviction on drop/recreate ---------------- *)

let test_index_eviction () =
  let db = small_db () in
  (* sanity: the PK is live *)
  Alcotest.(check bool) "duplicate rejected" true
    (Result.is_error (Database.insert db "K" [ i 1; i 99 ]));
  (match Database.drop_table db "K" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  check_kind "heap of dropped table" Err.Storage
    (Err.protect ~kind:Err.Storage (fun () -> Database.heap db "K"));
  Database.create_table db
    (Table_def.make "K"
       [ coldef "id" Ctype.Int; coldef "v" Ctype.Int ]
       [ Constr.Primary_key [ "id" ] ]);
  (* a stale key index would still hold id=1 and wrongly report a dup *)
  (match Database.insert_result db "K" [ i 1; i 10 ] with
  | Ok () -> ()
  | Error e ->
      Alcotest.fail ("stale index after recreate: " ^ Err.to_string e));
  Alcotest.(check int) "fresh table has one row" 1 (k_len db);
  (* secondary indexes are evicted too: recreate and query by the old key *)
  (match Database.create_index db ~name:"kv" ~table:"K" ~cols:[ "v" ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "index lookup" 1
    (List.length (select db "SELECT K.id FROM K K WHERE K.v = 10"));
  (match Database.drop_table db "K" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  Database.create_table db
    (Table_def.make "K"
       [ coldef "id" Ctype.Int; coldef "v" Ctype.Int ]
       [ Constr.Primary_key [ "id" ] ]);
  Database.load db "K" [ [ i 2; i 7 ] ];
  Alcotest.(check int) "old key finds nothing" 0
    (List.length (select db "SELECT K.id FROM K K WHERE K.v = 10"));
  Alcotest.(check int) "new key found by scan" 1
    (List.length (select db "SELECT K.id FROM K K WHERE K.v = 7"))

(* ---------------- typed scan arity diagnostics ---------------- *)

let test_scan_arity () =
  let db = small_db () in
  let bad =
    Schema.make
      [
        (cr "K" "id", Ctype.Int); (cr "K" "v", Ctype.Int);
        (cr "K" "ghost", Ctype.Int);
      ]
  in
  let r = Exec.run_checked db (Plan.scan ~table:"K" ~rel:"K" bad) in
  check_kind "arity mismatch is Exec" Err.Exec r;
  match r with
  | Error e ->
      check_contains "names the table" "K" (Err.msg e);
      check_contains "describes the mismatch" "arity mismatch" (Err.msg e);
      check_contains "expected arity" "3" (Err.msg e);
      check_contains "actual arity" "2" (Err.msg e)
  | Ok _ -> ()

let () =
  Alcotest.run "robust"
    [
      ( "errors",
        [
          Alcotest.test_case "typed channel" `Quick test_err_channel;
          Alcotest.test_case "scan arity" `Quick test_scan_arity;
        ] );
      ( "faults",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "clock monotone under backward jumps" `Quick
            test_clock_monotone_under_jumps;
          Alcotest.test_case "every point fires" `Quick test_points_fire;
          Alcotest.test_case "write atomicity" `Quick test_write_atomicity;
          Alcotest.test_case "120 seeded schedules" `Quick
            test_random_schedules;
        ] );
      ( "governor",
        [ Alcotest.test_case "limits abort, session lives" `Quick test_governor ] );
      ( "planner",
        [
          Alcotest.test_case "degrades to E1" `Quick test_planner_fallback;
          Alcotest.test_case "unknown table verdict" `Quick
            test_testfd_unknown_table;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "interrupted save" `Quick test_crash_safe_save;
          Alcotest.test_case "corruption rejected" `Quick
            test_snapshot_corruption;
        ] );
      ( "indexes",
        [ Alcotest.test_case "evicted on drop/recreate" `Quick test_index_eviction ] );
    ]
