-- eagerdb fuzz corpus: four-relation star (R is the hub), no declared
-- keys, NULL-heavy join columns.  TestFD is NO at every cut, so replay
-- exercises the unconditional partial (E2p) placements below each of
-- the seven admissible cuts against forced E1 and the reference
-- evaluator, including flush epochs under the tiny partial cap.
-- replay: eagerdb fuzz --replay <this directory>
-- r1: R
CREATE TABLE S (x INTEGER, y INTEGER);
CREATE TABLE T (u INTEGER, w INTEGER);
CREATE TABLE U (p INTEGER, q INTEGER);
CREATE TABLE R (a INTEGER, b INTEGER, c INTEGER, v INTEGER);
INSERT INTO R VALUES (1, 1, 1, 1), (1, 1, 1, 2), (2, 1, NULL, 3), (NULL, 2, 1, 4), (1, 2, 2, NULL);
INSERT INTO S VALUES (1, 1), (1, 2), (2, NULL);
INSERT INTO T VALUES (1, 1), (2, 2), (NULL, 1);
INSERT INTO U VALUES (1, 1), (2, NULL);
SELECT S.y, T.w, COUNT(R.v) AS agg FROM R, S, T, U WHERE R.a = S.x AND R.b = T.u AND R.c = U.p GROUP BY S.y, T.w;
