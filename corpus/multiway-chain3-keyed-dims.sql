-- eagerdb fuzz corpus: three-relation chain with keyed dimensions and
-- NULL join keys.  TestFD answers YES at cut {R} (S.x PRIMARY KEY
-- chains to T's key via S.y = T.u), so replay exercises the full eager
-- push, every partial placement, and the fault/budget checks on each.
-- replay: eagerdb fuzz --replay <this directory>
-- r1: R
CREATE TABLE S (x INTEGER, y INTEGER, PRIMARY KEY (x));
CREATE TABLE T (u INTEGER, w INTEGER, PRIMARY KEY (u));
CREATE TABLE R (a INTEGER, b INTEGER, v INTEGER);
INSERT INTO R VALUES (1, 1, 10), (1, 2, 20), (2, NULL, 30), (NULL, 1, 40), (3, 3, NULL), (1, 1, 50);
INSERT INTO S VALUES (1, 1), (2, 2), (3, NULL);
INSERT INTO T VALUES (1, 5), (2, NULL);
SELECT S.x, SUM(R.v) AS agg FROM R, S, T WHERE R.a = S.x AND S.y = T.u GROUP BY S.x;
