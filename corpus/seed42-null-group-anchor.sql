-- eagerdb fuzz corpus: regression anchor
-- minimal shape of the comparator-mutation demo (test_fuzz.ml): a
-- single NULL-keyed group, which a 3VL-style comparator mis-judges
-- while the engine's =n grouping handles it; must stay green under the
-- real oracle forever
-- replay: eagerdb fuzz --replay corpus
-- r1: R
CREATE TABLE S (x INTEGER, y INTEGER, PRIMARY KEY (x));
CREATE TABLE R (a INTEGER, b INTEGER, v INTEGER);
INSERT INTO R VALUES (1, NULL, 5), (1, NULL, 7), (2, 1, 9);
INSERT INTO S VALUES (1, 2), (2, NULL);
SELECT R.b, SUM(R.v) AS agg FROM R, S WHERE (R.a = S.x) GROUP BY R.b;
