(* Sales rollup: revenue per customer over a fact table 40× the dimension —
   the classic shape where eager aggregation shines — plus the HAVING and
   ORDER BY extensions, end to end through the SQL front end.

   Run with:  dune exec examples/sales_rollup.exe *)

open Eager_schema
open Eager_storage
open Eager_exec
open Eager_core
open Eager_opt
open Eager_workload

let () =
  let w = Sales.setup ~customers:200 ~orders:8_000 () in
  let db = w.Sales.db and q = w.Sales.query in

  print_endline "== revenue per customer (8000 orders, 200 customers) ==";
  print_endline (Format.asprintf "%a" Canonical.pp q);
  let d =
    match Planner.decide db q with
    | Ok d -> d
    | Error e -> failwith (Eager_robust.Err.to_string e)
  in
  Printf.printf "\nTestFD: %s\n" (Testfd.verdict_to_string d.Planner.verdict);
  Printf.printf "cost lazy (E1): %.0f   cost eager (E2): %s   chosen: %s\n"
    d.Planner.cost_lazy
    (match d.Planner.cost_eager with
    | Some c -> Printf.sprintf "%.0f" c
    | None -> "-")
    (Planner.kind_to_string d.Planner.chosen_kind);

  (* run the chosen plan, top five customers by revenue *)
  let sorted =
    Eager_algebra.Plan.sort [ (Colref.make "" "revenue", true) ] d.Planner.chosen
  in
  let heap, _ = Exec.run db sorted in
  print_endline "\ntop customers by revenue:";
  List.iteri
    (fun i row -> if i < 5 then print_endline ("  " ^ Row.to_string row))
    (Heap.to_list heap);
  Printf.printf "(%d customers total)\n" (Heap.length heap);

  (* the HAVING variant: big customers only *)
  print_endline "\n== with HAVING revenue >= 15000 ==";
  let wh = Sales.setup ~customers:200 ~orders:8_000 ~revenue_at_least:15_000 () in
  let qh = wh.Sales.query and dbh = wh.Sales.db in
  (match Testfd.test dbh qh with
  | Testfd.Yes -> print_endline "TestFD: YES (HAVING does not affect validity)"
  | Testfd.No r -> Printf.printf "TestFD: NO (%s)\n" r);
  let rows_lazy = Exec.run_rows dbh (Plans.e1 dbh qh) in
  let rows_eager = Exec.run_rows dbh (Plans.e2 dbh qh) in
  Printf.printf "big customers: %d; eager and lazy agree: %b\n"
    (List.length rows_lazy)
    (Exec.multiset_equal rows_lazy rows_eager);

  (* unique-group detection: grouping the join by the order key would make
     every group a singleton — the optimizer can prove it *)
  let join_plan = Plans.side1 dbh qh in
  Printf.printf "\ngrouping orders by their primary key is provably singleton: %b\n"
    (Unique_group.groups_are_unique dbh
       ~by:[ Colref.make "O" "OrderID" ]
       join_plan)
