(* Plan explorer: when is group-by-before-join actually a good idea?

   Run with:  dune exec examples/plan_explorer.exe -- [employees] [departments]

   Reproduces the paper's Section 7 discussion: the transformation never
   increases the join input, but it can inflate the group-by input — the
   Figure 8 counter-case.  This example sweeps the two knobs and prints,
   for each point, the estimated costs, the measured wall-clock of both
   plans, and the optimizer's choice. *)

open Eager_exec
open Eager_core
open Eager_opt
open Eager_workload

let time_ms f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.)

let describe db q =
  let d =
    match Planner.decide db q with
    | Ok d -> d
    | Error e -> failwith (Eager_robust.Err.to_string e)
  in
  let (_, t1) = time_ms (fun () -> Exec.run_rows db (Plans.e1 db q)) in
  let (_, t2) = time_ms (fun () -> Exec.run_rows db (Plans.e2 db q)) in
  (d, t1, t2)

let () =
  let employees =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10_000
  in
  let departments =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 100
  in

  Printf.printf "== Example 1 shape: %d employees, %d departments ==\n"
    employees departments;
  let w = Employee_dept.setup ~employees ~departments () in
  let d, t1, t2 = describe w.Employee_dept.db w.Employee_dept.query in
  Printf.printf "E1 cost %.0f (%.1f ms)  E2 cost %s (%.1f ms)  -> %s\n"
    d.Planner.cost_lazy t1
    (match d.Planner.cost_eager with
    | Some c -> Printf.sprintf "%.0f" c
    | None -> "-")
    t2
    (Planner.kind_to_string d.Planner.chosen_kind);

  Printf.printf "\n== Figure 8 shape: valid but disadvantageous ==\n";
  let c = Contrived.setup () in
  let d, t1, t2 = describe c.Contrived.db c.Contrived.query in
  Printf.printf "E1 cost %.0f (%.1f ms)  E2 cost %s (%.1f ms)  -> %s\n"
    d.Planner.cost_lazy t1
    (match d.Planner.cost_eager with
    | Some c -> Printf.sprintf "%.0f" c
    | None -> "-")
    t2
    (Planner.kind_to_string d.Planner.chosen_kind);

  Printf.printf "\n== Fan-in sweep (employees fixed at %d) ==\n" employees;
  Printf.printf "%12s %12s %12s %10s %10s  %s\n" "rows/group" "cost E1"
    "cost E2" "E1 ms" "E2 ms" "choice";
  List.iter
    (fun p ->
      let d, t1, t2 = describe p.Sweep.db p.Sweep.query in
      Printf.printf "%12.1f %12.0f %12.0f %10.1f %10.1f  %s\n" p.Sweep.knob
        d.Planner.cost_lazy
        (Option.value d.Planner.cost_eager ~default:nan)
        t1 t2
        (match d.Planner.chosen_kind with
        | Planner.Eager_group -> "E2"
        | Planner.Eager_partial_group -> "E2p"
        | Planner.Lazy_group -> "E1"))
    (Sweep.by_fanin ~employees ~departments:[ 10; 100; 1000; employees ] ());

  Printf.printf "\n== Selectivity sweep (%d employees, %d departments) ==\n"
    employees departments;
  Printf.printf "%12s %12s %12s %10s %10s  %s\n" "match frac" "cost E1"
    "cost E2" "E1 ms" "E2 ms" "choice";
  List.iter
    (fun p ->
      let d, t1, t2 = describe p.Sweep.db p.Sweep.query in
      Printf.printf "%12.2f %12.0f %12.0f %10.1f %10.1f  %s\n" p.Sweep.knob
        d.Planner.cost_lazy
        (Option.value d.Planner.cost_eager ~default:nan)
        t1 t2
        (match d.Planner.chosen_kind with
        | Planner.Eager_group -> "E2"
        | Planner.Eager_partial_group -> "E2p"
        | Planner.Lazy_group -> "E1"))
    (Sweep.by_selectivity ~employees ~departments
       ~fractions:[ 0.01; 0.1; 0.5; 1.0 ] ())
