(* Quickstart: the paper's Example 1, end to end, through the SQL front end.

   Run with:  dune exec examples/quickstart.exe

   It creates the Employee/Department schema, loads a few rows, asks the
   optimizer whether COUNT-per-department may be grouped before the join
   (TestFD), shows both plans with costs, executes the chosen one and
   prints the result. *)

open Eager_schema
open Eager_storage
open Eager_exec
open Eager_core
open Eager_opt
open Eager_parser

let schema_sql =
  {|CREATE TABLE Department (
      DeptID INTEGER,
      Name   VARCHAR(30) NOT NULL,
      PRIMARY KEY (DeptID));
    CREATE TABLE Employee (
      EmpID     INTEGER,
      LastName  VARCHAR(30) NOT NULL,
      FirstName VARCHAR(30),
      DeptID    INTEGER,
      PRIMARY KEY (EmpID),
      FOREIGN KEY (DeptID) REFERENCES Department (DeptID));
    INSERT INTO Department VALUES
      (1, 'Research'), (2, 'Sales'), (3, 'Engineering');
    INSERT INTO Employee VALUES
      (1, 'Ada',   'A', 1), (2, 'Bell',  'B', 1), (3, 'Cray',  'C', 2),
      (4, 'Dunn',  'D', 2), (5, 'Evans', 'E', 2), (6, 'Floyd', 'F', NULL);|}

let query_sql =
  "SELECT D.DeptID, D.Name, COUNT(E.EmpID) AS emp_count \
   FROM Employee E, Department D \
   WHERE E.DeptID = D.DeptID \
   GROUP BY D.DeptID, D.Name"

let () =
  let db = Database.create () in
  (match Binder.run_script db schema_sql with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  print_endline "-- Example 1 (paper Section 1):";
  print_endline query_sql;
  print_newline ();

  (* bind the SQL and canonicalise it into the paper's query class *)
  let bound =
    match Binder.bind_select db (Parser.parse_select query_sql) with
    | Ok (Binder.Grouped input) -> input
    | Ok _ -> failwith "expected a grouped query"
    | Error msg -> failwith msg
  in
  let q = Canonical.of_input_exn db bound in

  (* is group-by-before-join valid?  (Main Theorem via TestFD) *)
  (match Eager.validate db q with
  | Testfd.Yes -> print_endline "TestFD: YES — the group-by may be pushed below the join"
  | Testfd.No r -> Printf.printf "TestFD: NO (%s)\n" r);

  (* let the cost-based planner pick a side *)
  let decision =
    match Planner.decide db q with
    | Ok d -> d
    | Error e -> failwith (Eager_robust.Err.to_string e)
  in
  print_newline ();
  print_string (Explain.text db decision);

  (* execute the chosen plan *)
  let heap, stats = Exec.run db decision.Planner.chosen in
  print_endline "\n-- executed plan with per-operator cardinalities:";
  print_endline (Optree.to_string stats);
  print_endline "-- result:";
  let schema = Heap.schema heap in
  Array.iter
    (fun (c, _) -> Printf.printf "%-14s" (Colref.to_string c))
    (Schema.cols schema);
  print_newline ();
  Heap.iter
    (fun row ->
      Array.iter
        (fun v -> Printf.printf "%-14s" (Eager_value.Value.to_string v))
        row;
      print_newline ())
    heap;
  (* sanity: both plans agree *)
  let rows_lazy = Exec.run_rows db decision.Planner.plan_lazy in
  Printf.printf "\nlazy plan agrees with the chosen plan: %b\n"
    (Exec.multiset_equal rows_lazy (Heap.to_list heap))
