(* Printer accounting: the paper's Example 3 (Section 6.3) and Example 5
   (Section 8), on a generated workload.

   Run with:  dune exec examples/printer_accounting.exe

   Part 1 traces TestFD on the three-table query — partitioning into
   R1 = {PrinterAuth, Printer} and R2 = {UserAccount}, CNF/DNF, the
   transitive closure — and executes the rewritten query.

   Part 2 plays the query backwards as the paper's aggregated view
   UserInfo: "materialise the view, then join" is exactly plan E2, and the
   reverse transformation flattens it into "join everything, then group"
   (plan E1). *)

open Eager_exec
open Eager_core
open Eager_opt
open Eager_workload

let () =
  let w = Printers.setup ~users:400 ~machines:6 ~printers:30 () in
  let db = w.Printers.db and q = w.Printers.query in

  print_endline "== Part 1: Example 3 — TestFD walk-through ==";
  print_endline (Format.asprintf "%a" Canonical.pp q);
  let verdict, trace = Testfd.test_traced db q in
  Printf.printf "\nCNF clauses kept: %d, dropped: %d; DNF disjuncts: %d\n"
    trace.Testfd.clauses_kept trace.Testfd.clauses_dropped
    trace.Testfd.disjuncts;
  List.iter
    (fun (cols, r2_ok, ga1_ok) ->
      Printf.printf "closure S = {%s}\n  key(R2) ⊆ S: %b, GA1+ ⊆ S: %b\n"
        (String.concat ", " cols) r2_ok ga1_ok)
    trace.Testfd.closures;
  Printf.printf "verdict: %s\n\n" (Testfd.verdict_to_string verdict);

  print_endline "rewritten query (group PrinterAuth ⋈ Printer first):";
  print_endline (Eager_algebra.Plan.to_string (Plans.e2 db q));

  let rows = Exec.run_rows db (Plans.e2 db q) in
  Printf.printf "users on 'dragon': %d\n" (List.length rows);
  print_endline "first few rows (UserId, UserName, TotUsage, MaxSpeed, MinSpeed):";
  List.iteri
    (fun i row ->
      if i < 5 then print_endline ("  " ^ Eager_schema.Row.to_string row))
    rows;

  print_endline "\n== Part 2: Example 5 — the reverse transformation ==";
  print_endline "aggregated view UserInfo (what a straightforward plan materialises):";
  print_endline (Eager_algebra.Plan.to_string (Reverse.view_plan db q));
  (match Reverse.eligible db q with
  | Ok () ->
      print_endline
        "eligible: the optimizer may also flatten the view into the join"
  | Error r -> Printf.printf "not eligible: %s\n" r);
  let d =
    match Planner.decide db q with
    | Ok d -> d
    | Error e -> failwith (Eager_robust.Err.to_string e)
  in
  Printf.printf "cost, materialise-view strategy (E2): %s\n"
    (match d.Planner.cost_eager with
    | Some c -> Printf.sprintf "%.0f" c
    | None -> "-");
  Printf.printf "cost, flattened strategy        (E1): %.0f\n"
    d.Planner.cost_lazy;
  Printf.printf "optimizer picks: %s\n"
    (Planner.kind_to_string d.Planner.chosen_kind);
  let rv = Exec.run_rows db (Reverse.plan_of db q Reverse.Materialize_view) in
  let rf = Exec.run_rows db (Reverse.plan_of db q Reverse.Flatten) in
  Printf.printf "both strategies return identical results: %b\n"
    (Exec.multiset_equal rv rf)
