(* Parts & suppliers: the paper's Example 2 — derived functional
   dependencies — plus constraint enforcement in action.

   Run with:  dune exec examples/parts_suppliers.exe

   The paper's point: in the derived table

     SELECT P.PartNo, P.PartName, S.SupplierNo, S.Name
     FROM Part P, Supplier S
     WHERE P.ClassCode = 25 AND P.SupplierNo = S.SupplierNo

   PartNo is a key, and SupplierNo → Name survives as a non-key derived
   dependency.  We derive both mechanically with the attribute closure and
   then verify them against the actual instance. *)

open Eager_value
open Eager_schema
open Eager_catalog
open Eager_storage
open Eager_fd
open Eager_core
open Eager_workload

let cr = Colref.make

let () =
  let w = Parts.setup ~parts:2_000 ~suppliers:50 ~classes:40 () in
  let db = w.Parts.db in

  print_endline "== Derived dependencies (Example 2) ==";
  let part = Option.get (Catalog.find_table (Database.catalog db) "Part") in
  let supplier =
    Option.get (Catalog.find_table (Database.catalog db) "Supplier")
  in
  let fds =
    From_catalog.key_fds ~rel:"P" part @ From_catalog.key_fds ~rel:"S" supplier
  in
  let constants = Colref.set_of_list [ cr "P" "ClassCode" ] in
  let equalities = [ (cr "P" "SupplierNo", cr "S" "SupplierNo") ] in
  let derived lhs rhs =
    Closure.implies ~constants ~equalities ~fds (Fd.make lhs rhs)
  in
  Printf.printf "PartNo -> PartName           : %b\n"
    (derived [ cr "P" "PartNo" ] [ cr "P" "PartName" ]);
  Printf.printf "PartNo -> S.Name (via join)  : %b\n"
    (derived [ cr "P" "PartNo" ] [ cr "S" "Name" ]);
  Printf.printf "SupplierNo -> Name           : %b\n"
    (derived [ cr "S" "SupplierNo" ] [ cr "S" "Name" ]);
  Printf.printf "Name -> SupplierNo (false!)  : %b\n"
    (derived [ cr "S" "Name" ] [ cr "S" "SupplierNo" ]);

  (* verify the derived key on the materialised derived table *)
  let q = w.Parts.query in
  let joined = Theorem.join_with_provenance db q in
  let joint = Schema.concat q.Canonical.schema1 q.Canonical.schema2 in
  let holds lhs rhs =
    Instance_check.fd_holds ~schema:joint ~lhs ~rhs (List.map fst joined)
  in
  Printf.printf
    "\ninstance check over %d joined rows:\n  PartNo determines everything: %b\n"
    (List.length joined)
    (holds [ cr "P" "PartNo" ] (Schema.colrefs joint));

  print_endline "\n== Aggregation query: class-25 parts per supplier ==";
  print_endline (Format.asprintf "%a" Canonical.pp q);
  (match Testfd.test db q with
  | Testfd.Yes -> print_endline "TestFD: YES"
  | Testfd.No r -> Printf.printf "TestFD: NO (%s)\n" r);
  let rows = Eager_exec.Exec.run_rows db (Plans.e2 db q) in
  Printf.printf "suppliers with class-25 parts: %d\n" (List.length rows);
  Printf.printf "plans agree: %b\n" (Theorem.equivalent db q);

  print_endline "\n== Constraint enforcement ==";
  let try_insert label values =
    match Database.insert db "Part" values with
    | Ok () -> Printf.printf "%-46s accepted\n" label
    | Error e ->
        Printf.printf "%-46s rejected: %s\n" label (Eager_robust.Err.to_string e)
  in
  try_insert "new part, valid supplier"
    [ Value.Int 25; Value.Int 99_001; Value.Str "widget"; Value.Int 1 ];
  try_insert "duplicate (ClassCode, PartNo) key"
    [ Value.Int 25; Value.Int 99_001; Value.Str "again"; Value.Int 1 ];
  try_insert "unknown supplier (FK violation)"
    [ Value.Int 25; Value.Int 99_002; Value.Str "orphan"; Value.Int 9_999 ];
  try_insert "NULL supplier (allowed by SQL2 FK rules)"
    [ Value.Int 25; Value.Int 99_003; Value.Str "loose"; Value.Null ]
