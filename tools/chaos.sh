#!/usr/bin/env bash
# Full failover chaos sweep: >= 50 seeded 3-node schedules cycling the
# four fault templates (primary SIGKILL, SIGSTOP/SIGCONT partition,
# backwards clock jumps, slow fsyncs).  Each schedule must show an
# automatic promotion (or prove the fault was absorbed without one), no
# lost acked write, exactly one writable node, and byte-identical WALs
# on the converged standbys.  A failing schedule replays standalone:
#   eagerdb chaos --schedules $((i+1)) --seed $seed   # runs 0..i
# and EAGERDB_CHAOS_KEEP=1 preserves the cluster's temp dir (db dirs,
# per-node logs) for post-mortem.
#
# Usage: chaos.sh path/to/eagerdb.exe [schedules] [seed]
set -u

exe=${1:?usage: chaos.sh path/to/eagerdb.exe [schedules] [seed]}
schedules=${2:-52}
seed=${3:-20260808}
chaos_pid=""
# the harness reaps its own clusters, but if THIS script dies the
# harness (and with it the clusters) must not be orphaned — dune would
# otherwise wait on them forever
cleanup() {
  [ -n "$chaos_pid" ] && kill -9 "$chaos_pid" 2>/dev/null
}
trap cleanup EXIT

"$exe" chaos --schedules "$schedules" --seed "$seed" --quiet &
chaos_pid=$!
wait "$chaos_pid"
rc=$?
chaos_pid=""
exit "$rc"
