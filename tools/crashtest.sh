#!/usr/bin/env bash
# Out-of-process kill/restart matrix for the write-ahead log.
#
# Each scenario runs the real eagerdb binary with a one-shot fault armed
# at a wal.* / persist.* injection point — the process dies exactly as a
# kill -9 would at that instant — then restarts it against the same
# directory and asserts the recovered database holds exactly the
# committed prefix: the in-flight statement is present iff its log
# record was fully durable (the fsync is the commit point).
#
# Usage: crashtest.sh path/to/eagerdb.exe
set -u

exe=${1:?usage: crashtest.sh path/to/eagerdb.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail=0

say() { echo "crashtest: $*"; }

# run <name> <db> <script-text> [--faults SPEC] — expects success
run() {
  local name=$1 db=$2 script=$3
  shift 3
  printf '%s\n' "$script" >"$tmp/$name.sql"
  if ! "$exe" run --wal --db "$tmp/$db" "$@" "$tmp/$name.sql" \
    >"$tmp/$name.out" 2>&1; then
    say "FAIL $name: expected success"
    sed "s/^/  | /" "$tmp/$name.out"
    fail=1
  fi
}

# crash <name> <db> <script-text> <fault-spec> — expects a nonzero exit
crash() {
  local name=$1 db=$2 script=$3 spec=$4
  printf '%s\n' "$script" >"$tmp/$name.sql"
  if "$exe" run --wal --db "$tmp/$db" --faults "$spec" "$tmp/$name.sql" \
    >"$tmp/$name.out" 2>&1; then
    say "FAIL $name: expected the injected crash to kill the run"
    sed "s/^/  | /" "$tmp/$name.out"
    fail=1
  fi
}

# expect <name> <pattern> — the named run's output must contain it
expect() {
  local name=$1 pattern=$2
  if ! grep -q "$pattern" "$tmp/$name.out"; then
    say "FAIL $name: output lacks '$pattern'"
    sed "s/^/  | /" "$tmp/$name.out"
    fail=1
  fi
}

seed='CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id));
INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);'
count='SELECT id, v FROM t;'
insert4='INSERT INTO t VALUES (4, 40);'

# --- crash mid-append: the statement was never committed ------------
run seed_a append_db "$seed"
crash crash_a append_db "$insert4" wal.append@1
run check_a append_db "$count"
expect check_a 'torn byte(s) dropped'
expect check_a '(3 rows)'

# --- crash after the record is durable but before the fsync returns -
run seed_f fsync_db "$seed"
crash crash_f fsync_db "$insert4" wal.fsync@1
run check_f fsync_db "$count"
expect check_f '(4 rows)'

# --- crash between snapshot and log truncation ----------------------
run seed_t trunc_db "$seed"
crash crash_t trunc_db "CHECKPOINT;" wal.truncate@1
run check_t trunc_db "$count"
expect check_t 'finished an interrupted checkpoint'
expect check_t '(3 rows)'

# --- crash mid-replay: recovery aborts cleanly and the retry wins ---
run seed_r replay_db "$seed"
crash crash_r replay_db "$count" wal.replay@2
expect crash_r 'injected fault at wal.replay'
run check_r replay_db "$count"
expect check_r '(3 rows)'

# --- crash inside the checkpoint's snapshot write / rename ----------
for point in persist.write persist.rename; do
  db="${point#persist.}_db"
  run "seed_$db" "$db" "$seed"
  crash "crash_$db" "$db" "CHECKPOINT;" "$point@1"
  run "check_$db" "$db" "$count"
  expect "check_$db" '(3 rows)'
done

if [ "$fail" -ne 0 ]; then
  say "FAILED"
  exit 1
fi
say "OK (6 crash points survived kill/restart)"
