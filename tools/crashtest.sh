#!/usr/bin/env bash
# Out-of-process kill/restart matrix for the write-ahead log.
#
# Each scenario runs the real eagerdb binary with a one-shot fault armed
# at a wal.* / persist.* injection point — the process dies exactly as a
# kill -9 would at that instant — then restarts it against the same
# directory and asserts the recovered database holds exactly the
# committed prefix: the in-flight statement is present iff its log
# record was fully durable (the fsync is the commit point).
#
# Usage: crashtest.sh path/to/eagerdb.exe
set -u

exe=${1:?usage: crashtest.sh path/to/eagerdb.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fail=0

say() { echo "crashtest: $*"; }

# run <name> <db> <script-text> [--faults SPEC] — expects success
run() {
  local name=$1 db=$2 script=$3
  shift 3
  printf '%s\n' "$script" >"$tmp/$name.sql"
  if ! "$exe" run --wal --db "$tmp/$db" "$@" "$tmp/$name.sql" \
    >"$tmp/$name.out" 2>&1; then
    say "FAIL $name: expected success"
    sed "s/^/  | /" "$tmp/$name.out"
    fail=1
  fi
}

# crash <name> <db> <script-text> <fault-spec> [flags...] — expects a
# nonzero exit
crash() {
  local name=$1 db=$2 script=$3 spec=$4
  shift 4
  printf '%s\n' "$script" >"$tmp/$name.sql"
  if "$exe" run --wal --db "$tmp/$db" --faults "$spec" "$@" "$tmp/$name.sql" \
    >"$tmp/$name.out" 2>&1; then
    say "FAIL $name: expected the injected crash to kill the run"
    sed "s/^/  | /" "$tmp/$name.out"
    fail=1
  fi
}

# expect <name> <pattern> — the named run's output must contain it
expect() {
  local name=$1 pattern=$2
  if ! grep -q "$pattern" "$tmp/$name.out"; then
    say "FAIL $name: output lacks '$pattern'"
    sed "s/^/  | /" "$tmp/$name.out"
    fail=1
  fi
}

seed='CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id));
INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);'
count='SELECT id, v FROM t;'
insert4='INSERT INTO t VALUES (4, 40);'

# --- crash mid-append: the statement was never committed ------------
run seed_a append_db "$seed"
crash crash_a append_db "$insert4" wal.append@1
run check_a append_db "$count"
expect check_a 'torn byte(s) dropped'
expect check_a '(3 rows)'

# --- crash after the record is durable but before the fsync returns -
run seed_f fsync_db "$seed"
crash crash_f fsync_db "$insert4" wal.fsync@1
run check_f fsync_db "$count"
expect check_f '(4 rows)'

# --- crash between snapshot and log truncation ----------------------
run seed_t trunc_db "$seed"
crash crash_t trunc_db "CHECKPOINT;" wal.truncate@1
run check_t trunc_db "$count"
expect check_t 'finished an interrupted checkpoint'
expect check_t '(3 rows)'

# --- crash mid-replay: recovery aborts cleanly and the retry wins ---
run seed_r replay_db "$seed"
crash crash_r replay_db "$count" wal.replay@2
expect crash_r 'injected fault at wal.replay'
run check_r replay_db "$count"
expect check_r '(3 rows)'

# --- crash inside the checkpoint's snapshot write / rename ----------
for point in persist.write persist.rename; do
  db="${point#persist.}_db"
  run "seed_$db" "$db" "$seed"
  crash "crash_$db" "$db" "CHECKPOINT;" "$point@1"
  run "check_$db" "$db" "$count"
  expect "check_$db" '(3 rows)'
done

# --- the same crash points over the paged backend -------------------
# --pages routes every table through the buffer pool and the WAL replay
# rebuilds a paged database, so the committed prefix must come back
# identically.  Pager files are run-scoped caches, never the source of
# truth: the closing unpaged reopen of the same directory must see the
# same rows.
paged="--pages 8 --page-size 512"
run seed_pa paged_db "$seed" $paged
crash crash_pa paged_db "$insert4" wal.append@1 $paged
run check_pa paged_db "$count" $paged
expect check_pa 'torn byte(s) dropped'
expect check_pa '(3 rows)'

run seed_pf pagedf_db "$seed" $paged
crash crash_pf pagedf_db "$insert4" wal.fsync@1 $paged
run check_pf pagedf_db "$count" $paged
expect check_pf '(4 rows)'

run seed_pt pagedt_db "$seed" $paged
crash crash_pt pagedt_db "CHECKPOINT;" wal.truncate@1 $paged
run check_pt pagedt_db "$count" $paged
expect check_pt 'finished an interrupted checkpoint'
expect check_pt '(3 rows)'

run check_px pagedf_db "$count"
expect check_px '(4 rows)'

# --- concurrent writers, server killed mid group commit -------------
# A one-shot fault at wal.group_commit fires after the batch is written
# but before the fsync — the commit point for the whole batch.
# --die-on-broken-wal turns the poisoned log into a process death, so
# the server dies mid-commit with writers in flight.  The oracle is
# ack-implies-durable: every insert whose client saw an OK must be
# there after restart.  Unacked inserts MAY also be there — exactly
# those whose record reached the log file before the failed fsync (the
# same recovery semantics the wal.fsync scenario pins down) — but never
# more than were submitted, and never a torn one (recovery itself must
# succeed).
wait_for_sock() {
  local sock=$1 i
  for i in $(seq 100); do
    [ -S "$sock" ] && return 0
    sleep 0.05
  done
  return 1
}

run seed_gc gc_db "$seed"
gc_sock="$tmp/gc.sock"
"$exe" serve --listen "unix:$gc_sock" --db "$tmp/gc_db" \
  --die-on-broken-wal --faults wal.group_commit@1 \
  >"$tmp/serve_gc.out" 2>&1 &
gc_srv=$!
if ! wait_for_sock "$gc_sock"; then
  say "FAIL serve_gc: server never came up"
  sed "s/^/  | /" "$tmp/serve_gc.out"
  fail=1
else
  gc_pids=""
  for i in 1 2 3; do
    "$exe" sql --connect "unix:$gc_sock" --retries 0 --timeout 10000 \
      "INSERT INTO t VALUES (4$i, 0);" >"$tmp/gc_c$i.out" 2>&1 &
    gc_pids="$gc_pids $!"
  done
  for p in $gc_pids; do wait "$p" || true; done
  if wait "$gc_srv"; then
    say "FAIL serve_gc: expected the poisoned WAL to stop the server"
    sed "s/^/  | /" "$tmp/serve_gc.out"
    fail=1
  fi
  expect serve_gc 'die-on-broken-wal'
  acked=0
  for i in 1 2 3; do
    grep -q 'row(s) inserted' "$tmp/gc_c$i.out" && acked=$((acked + 1))
  done
  run check_gc gc_db "$count"
  rows=$(sed -n 's/.*(\([0-9][0-9]*\) rows).*/\1/p' "$tmp/check_gc.out")
  if [ -z "$rows" ] || [ "$rows" -lt $((3 + acked)) ] || [ "$rows" -gt 6 ]; then
    say "FAIL check_gc: recovered $rows row(s), acked $acked — want between $((3 + acked)) and 6"
    sed "s/^/  | /" "$tmp/check_gc.out"
    fail=1
  fi
fi

# --- concurrent writers acked, then SIGKILL -------------------------
# Without faults every writer is acked (each ack follows the batch's
# fsync), then the server is killed outright.  Every acked row must
# survive recovery: group commit may batch the fsyncs but must never
# ack ahead of one.
run seed_kc kc_db "$seed"
kc_sock="$tmp/kc.sock"
"$exe" serve --listen "unix:$kc_sock" --db "$tmp/kc_db" \
  >"$tmp/serve_kc.out" 2>&1 &
kc_srv=$!
if ! wait_for_sock "$kc_sock"; then
  say "FAIL serve_kc: server never came up"
  sed "s/^/  | /" "$tmp/serve_kc.out"
  fail=1
else
  kc_pids=""
  for i in 1 2 3; do
    "$exe" sql --connect "unix:$kc_sock" --timeout 10000 \
      "INSERT INTO t VALUES (5$i, 0);" >"$tmp/kc_c$i.out" 2>&1 &
    kc_pids="$kc_pids $!"
  done
  for p in $kc_pids; do wait "$p" || true; done
  for i in 1 2 3; do
    if ! grep -q 'row(s) inserted' "$tmp/kc_c$i.out"; then
      say "FAIL kc_c$i: concurrent insert was not acked"
      sed "s/^/  | /" "$tmp/kc_c$i.out"
      fail=1
    fi
  done
  kill -9 "$kc_srv" 2>/dev/null
  wait "$kc_srv" 2>/dev/null
  run check_kc kc_db "$count"
  expect check_kc '(6 rows)'
fi

if [ "$fail" -ne 0 ]; then
  say "FAILED"
  exit 1
fi
say "OK (6 crash points, 3 paged replays + 2 concurrent-writer kills survived restart)"
