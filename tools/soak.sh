#!/usr/bin/env bash
# Multi-session soak: hammer one server with concurrent readers, writers
# and STATUS probes under deliberately tiny admission budgets, and
# assert the degradation contract end to end:
#   - over-budget load is shed with typed refusals (BUSY + retry-after)
#     or typed Resource errors, never anything untyped;
#   - no client ever hangs (every request is wrapped in `timeout`);
#   - the server neither crashes nor wedges, and still shuts down
#     cleanly on SIGTERM after the storm.
#
# Usage: soak.sh path/to/eagerdb.exe
set -u

exe=${1:?usage: soak.sh path/to/eagerdb.exe}
tmp=$(mktemp -d)
srv=""
pids=""
# an early `exit 1` anywhere below must not orphan the server or the
# client subshells — dune would otherwise wait on them forever
cleanup() {
  for p in $pids; do kill -9 "$p" 2>/dev/null; done
  [ -n "$srv" ] && kill -9 "$srv" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
fail=0
say() { echo "soak: $*"; }

sock="$tmp/soak.sock"
"$exe" serve --listen "unix:$sock" --db "$tmp/db" \
  --max-active 2 --max-queued 2 --max-wait-ms 60 --global-rows 4000 \
  --read-timeout-ms 5000 >"$tmp/serve.out" 2>&1 &
srv=$!
up=0
for _ in $(seq 100); do
  [ -S "$sock" ] && up=1 && break
  sleep 0.05
done
if [ "$up" -ne 1 ]; then
  say "FAIL: server never came up"
  sed "s/^/  | /" "$tmp/serve.out"
  exit 1
fi

vals="(0,0)"
for i in $(seq 1 99); do vals="$vals,($i,$((i % 7)))"; done
if ! timeout 30 "$exe" sql --connect "unix:$sock" \
  "CREATE TABLE s (id INT, g INT); INSERT INTO s VALUES $vals;" \
  >"$tmp/seed.out" 2>&1; then
  say "FAIL: seeding the soak table"
  sed "s/^/  | /" "$tmp/seed.out"
  exit 1
fi

# 12 sessions x 5 rounds: a third grouped reads, a third writers, a
# third STATUS probes; every request retries shed responses with
# jittered backoff seeded per client+round so reruns are comparable
clients=12
rounds=5
pids=""
for c in $(seq 1 "$clients"); do
  (
    for r in $(seq 1 "$rounds"); do
      case $((c % 3)) in
      0) sql="SELECT s.g, COUNT(*) FROM s GROUP BY s.g;" ;;
      1) sql="INSERT INTO s VALUES ($((1000 + c * 10 + r)), $c);" ;;
      2) sql="STATUS;" ;;
      esac
      timeout 60 "$exe" sql --connect "unix:$sock" \
        --retries 6 --backoff-ms 10 --retry-seed $((c * 100 + r)) \
        --timeout 10000 "$sql" >/dev/null 2>>"$tmp/client_$c.err"
      echo "rc=$?" >>"$tmp/client_$c.rc"
    done
  ) &
  pids="$pids $!"
done
for p in $pids; do wait "$p" || true; done
pids=""

ok=0
shed=0
for c in $(seq 1 "$clients"); do
  while IFS= read -r line; do
    rc=${line#rc=}
    case "$rc" in
    0) ok=$((ok + 1)) ;;
    3) shed=$((shed + 1)) ;; # refused even after the retry budget
    1)
      # acceptable only as a typed Resource degradation
      if grep -q 'Resource' "$tmp/client_$c.err"; then
        shed=$((shed + 1))
      else
        say "FAIL: client $c failed untyped (rc=1)"
        sed "s/^/  | /" "$tmp/client_$c.err"
        fail=1
      fi
      ;;
    124)
      say "FAIL: client $c hung (timeout)"
      fail=1
      ;;
    *)
      say "FAIL: client $c exited rc=$rc"
      sed "s/^/  | /" "$tmp/client_$c.err"
      fail=1
      ;;
    esac
  done <"$tmp/client_$c.rc"
done

total=$((clients * rounds))
say "$ok/$total requests served, $shed shed typed"
if [ "$ok" -lt $((total / 2)) ]; then
  say "FAIL: fewer than half the requests were served"
  fail=1
fi

if ! kill -0 "$srv" 2>/dev/null; then
  say "FAIL: server died during the soak"
  sed "s/^/  | /" "$tmp/serve.out"
  fail=1
else
  status=$(timeout 30 "$exe" sql --connect "unix:$sock" "STATUS;" 2>&1)
  echo "$status" | grep -q '^server:' || {
    say "FAIL: STATUS after the soak"
    echo "$status" | sed "s/^/  | /"
    fail=1
  }
  say "post-soak ${status%%$'\n'*}"
  kill -TERM "$srv"
  if ! timeout 30 tail --pid="$srv" -f /dev/null; then
    say "FAIL: server did not shut down on SIGTERM"
    fail=1
  elif ! grep -q 'shut down' "$tmp/serve.out"; then
    say "FAIL: no clean shutdown line"
    sed "s/^/  | /" "$tmp/serve.out"
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  say "FAILED"
  exit 1
fi
say "OK"
