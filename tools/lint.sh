#!/usr/bin/env bash
# Forbids `failwith` and `Obj.magic` in lib/ and bin/ outside the
# allowlist.  New code should report failures through the typed error
# channel (Eager_robust.Err) so callers can distinguish error kinds and
# the REPL can survive them; `Obj.magic` is never acceptable.
set -u

allow=tools/lint_allowlist.txt
bad=0

# The durability layer can never be grandfathered: a failwith in the WAL
# or recovery path would turn a recoverable crash into data loss.
if grep -qE '^lib/durable/' "$allow"; then
  echo "lint: lib/durable must stay failwith-free; remove it from $allow" >&2
  exit 1
fi

while IFS= read -r hit; do
  file=${hit%%:*}
  if ! grep -qxF "$file" "$allow"; then
    echo "lint: forbidden construct outside allowlist: $hit" >&2
    bad=1
  fi
done < <(grep -rn --include='*.ml' -E 'failwith|Obj\.magic' lib bin || true)

if [ "$bad" -ne 0 ]; then
  echo "lint: use Eager_robust.Err (errf/failf/protect) instead," >&2
  echo "lint: or append the file to $allow with a justification." >&2
  exit 1
fi
echo "lint: OK"
