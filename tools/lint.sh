#!/usr/bin/env bash
# Forbids `failwith` and `Obj.magic` in lib/ and bin/ outside the
# allowlist.  New code should report failures through the typed error
# channel (Eager_robust.Err) so callers can distinguish error kinds and
# the REPL can survive them; `Obj.magic` is never acceptable.
#
# Also forbids `Random.self_init` and the implicit global generator
# (`Random.int`, `Random.bool`, ...) everywhere in lib/, bin/ and
# bench/: all randomness must thread an explicit seeded
# `Random.State.t` (see Eager_workload.Gen) so every run — above all
# the fuzz harness — replays bit-for-bit from its seed.
set -u

allow=tools/lint_allowlist.txt
bad=0

# The durability layer can never be grandfathered: a failwith in the WAL
# or recovery path would turn a recoverable crash into data loss.
if grep -qE '^lib/durable/' "$allow"; then
  echo "lint: lib/durable must stay failwith-free; remove it from $allow" >&2
  exit 1
fi

# Neither can the fuzz harness: an untyped failure or a nondeterministic
# draw there invalidates the oracle's replayability guarantee.
if grep -qE '^lib/fuzz/' "$allow"; then
  echo "lint: lib/fuzz must stay failwith-free; remove it from $allow" >&2
  exit 1
fi

# Nor the server: an untyped failure in a session thread kills the whole
# process, not one statement — the opposite of graceful degradation.
if grep -qE '^lib/server/' "$allow"; then
  echo "lint: lib/server must stay failwith-free; remove it from $allow" >&2
  exit 1
fi

while IFS= read -r hit; do
  file=${hit%%:*}
  if ! grep -qxF "$file" "$allow"; then
    echo "lint: forbidden construct outside allowlist: $hit" >&2
    bad=1
  fi
done < <(grep -rn --include='*.ml' -E 'failwith|Obj\.magic' lib bin || true)

# The executor is a pull pipeline: whole-relation materialization
# (Heap.to_list, List.concat over operator output) is banned in
# lib/exec hot paths.  True pipeline breakers mark the offending line
# with a `breaker-ok` comment stating why; ref_eval.ml is exempt
# wholesale — it is the deliberately materializing reference oracle the
# pipeline is differentially tested against.
while IFS= read -r hit; do
  line=${hit#*:*:}
  case "$line" in
  *breaker-ok*) ;;
  *)
    echo "lint: whole-relation materialization in the pull pipeline: $hit" >&2
    echo "lint: stream through cursors/batches, or mark a true pipeline" >&2
    echo "lint: breaker with a 'breaker-ok' comment explaining why." >&2
    bad=1
    ;;
  esac
done < <(grep -rn --include='*.ml' \
  --exclude='ref_eval.ml' \
  -E 'Heap\.to_list|List\.concat' \
  lib/exec || true)

# A session thread must never block without a deadline: every socket
# read in lib/server goes through Wire.read_frame's select-with-budget
# loop.  A naked blocking read is banned unless the line carries a
# `timeout-ok` marker naming what bounds it.
while IFS= read -r hit; do
  line=${hit#*:*:}
  case "$line" in
  *timeout-ok*) ;;
  *)
    echo "lint: unbounded blocking read in lib/server: $hit" >&2
    echo "lint: route reads through Wire.read_frame (select + budget)," >&2
    echo "lint: or mark the line 'timeout-ok: <what bounds it>'." >&2
    bad=1
    ;;
  esac
done < <(grep -rn --include='*.ml' -E \
  'Unix\.read[^_a-zA-Z]|input_line|really_input|In_channel\.input' \
  lib/server || true)

# Every fault point named at a hook site (Fault.check/trip/hit/lag,
# ~fault:) must be registered in Fault.all_points: the seeded crash
# matrix, the fuzz harness and the chaos driver iterate that list, so an
# unregistered point never fires under them and its failure path
# silently loses coverage.
registered=$(sed -n '/^let all_points/,/^  \]/p' lib/robust/fault.ml |
  grep -oE '"[a-z_.]+"' | tr -d '"')
check_fault_sites() { # check_fault_sites <registered-list> ; reads hits on stdin
  local reg=$1 rc=0 hit point
  while IFS= read -r hit; do
    point=$(printf '%s' "$hit" | grep -oE '"[a-z_.]+"' | head -1 | tr -d '"')
    [ -n "$point" ] || continue
    if ! printf '%s\n' "$reg" | grep -qxF "$point"; then
      echo "lint: fault point \"$point\" is not in Fault.all_points: $hit" >&2
      echo "lint: register it there so the crash matrix exercises it." >&2
      rc=1
    fi
  done
  return "$rc"
}
fault_sites() { # fault_sites <dir>...
  grep -rn --include='*.ml' -E \
    'Fault\.(check|trip|hit|lag) "[a-z_.]+"|Fault\.lag [^"]* "[a-z_.]+"|~fault:"[a-z_.]+"' \
    "$@" | grep -v 'lib/robust/fault\.ml' || true
}
check_fault_sites "$registered" < <(fault_sites lib bin) || bad=1

# Self-test: the rule must actually catch an unregistered hook site —
# a regex that silently stops matching (a new Fault entry point, say)
# would otherwise rot into false confidence.
selftest=$(mktemp -d)
cat >"$selftest/bad.ml" <<'EOF'
let f () = Fault.trip "lint.selftest_unregistered"
let g () = Fault.hit "lint.selftest_hit"
let h () = Fault.lag ~ms:5. "lint.selftest_lag"
EOF
if check_fault_sites "$registered" < <(fault_sites "$selftest") 2>/dev/null; then
  echo "lint: SELF-TEST FAILED — an unregistered fault point slipped past" >&2
  echo "lint: the fault-registration rule (check the regex in fault_sites)." >&2
  bad=1
fi
rm -rf "$selftest"

# The two-sided Plans.e1/e2 constructors are the legacy N=2 planning
# surface: they hard-code one join with aggregation either fully above
# or fully below it.  All plan construction in lib/ goes through the
# join-graph pipeline (Qgraph / Placement / Planner) so every query
# benefits from placement enumeration and the per-cut TestFD gate.
# Sanctioned: lib/core (where the constructors live) and
# lib/opt/placement.ml (the bridge that lowers chosen placements onto
# them).  Any other use in lib/ must carry a `legacy-plan-ok` marker
# stating why it deliberately bypasses the planner.
while IFS= read -r hit; do
  line=${hit#*:*:}
  case "$line" in
  *legacy-plan-ok*) ;;
  *)
    echo "lint: legacy two-sided plan construction outside lib/core: $hit" >&2
    echo "lint: plan through Planner.decide / Placement (join-graph" >&2
    echo "lint: pipeline), or mark the line 'legacy-plan-ok: <why>'." >&2
    bad=1
    ;;
  esac
done < <(grep -rn --include='*.ml' -E 'Plans\.(e1|e2)' lib |
  grep -vE '^lib/(core|opt/placement\.ml)' || true)

# Raw page IO is the buffer pool's monopoly: Pager.read/write/alloc
# outside lib/storage/buffer_pool.ml bypasses the frame cache, the
# pin-count protocol and the pool's hit/miss/eviction telemetry, so a
# query could do unbounded IO that no budget sees.  Everything else
# (heaps, executor spill, checkpoints) goes through Buffer_pool's
# with_page/append_page/read_page.  A deliberate bypass must carry a
# `pager-ok` marker stating why.
while IFS= read -r hit; do
  line=${hit#*:*:}
  case "$line" in
  *pager-ok* | *'(*'*) ;;
  *)
    echo "lint: raw Pager IO outside the buffer pool: $hit" >&2
    echo "lint: route page access through Buffer_pool (with_page /" >&2
    echo "lint: append_page / read_page), or mark the line" >&2
    echo "lint: 'pager-ok: <why the pool must be bypassed>'." >&2
    bad=1
    ;;
  esac
done < <(grep -rn --include='*.ml' -E 'Pager\.(read|write|alloc)[^_a-zA-Z]' \
  lib bin | grep -v 'lib/storage/buffer_pool\.ml' || true)

# no allowlist for nondeterminism: Random.self_init and the global
# generator are banned outright (Random.State through Gen is the only
# sanctioned source of randomness)
while IFS= read -r hit; do
  echo "lint: nondeterministic randomness (use Eager_workload.Gen): $hit" >&2
  bad=1
done < <(grep -rn --include='*.ml' -E \
  'Random\.self_init|Random\.(int|bool|float|bits)[^_a-zA-Z]' \
  lib bin bench || true)

if [ "$bad" -ne 0 ]; then
  echo "lint: use Eager_robust.Err (errf/failf/protect) instead," >&2
  echo "lint: or append the file to $allow with a justification." >&2
  exit 1
fi
echo "lint: OK"
