#!/usr/bin/env bash
# End-to-end failover drill:
#   - spawn a durable primary with a one-shot repl.send fault armed (the
#     replication stream WILL break mid-drill and the standby must
#     reconnect), and a durable standby following it;
#   - hammer the primary with concurrent writers, recording every acked
#     insert (the ack-implies-durable oracle);
#   - quiesce, wait for the standby to report zero lag at the primary's
#     final LSN, then SIGKILL the primary — no shutdown courtesy;
#   - promote the standby via the operator signal path (SIGUSR1) and
#     verify it flips to role=primary, accepts writes, and holds every
#     acked row;
#   - finally SIGTERM the survivor and prove a clean exit.
#
# Usage: failover.sh path/to/eagerdb.exe
set -u

exe=${1:?usage: failover.sh path/to/eagerdb.exe}
tmp=$(mktemp -d)
primary_pid=""
standby_pid=""
writer_pids=""
# an early `exit 1` anywhere below must not orphan the servers or the
# writer subshells — dune would otherwise wait on them forever
cleanup() {
  for p in $writer_pids; do kill -9 "$p" 2>/dev/null; done
  [ -n "$primary_pid" ] && kill -9 "$primary_pid" 2>/dev/null
  [ -n "$standby_pid" ] && kill -9 "$standby_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT
say() { echo "failover: $*"; }

psock="$tmp/primary.sock"
ssock="$tmp/standby.sock"

sql() { # sql <sock> <script>
  timeout 30 "$exe" sql --connect "unix:$1" --retries 5 --backoff-ms 20 "$2"
}

wait_sock() { # wait_sock <path> <what>
  for _ in $(seq 200); do
    [ -S "$1" ] && return 0
    sleep 0.05
  done
  say "FAIL: $2 never came up"
  sed "s/^/  | /" "$tmp/primary.out" "$tmp/standby.out" 2>/dev/null
  exit 1
}

# --- spawn the pair (primary with a one-shot repl.send fault armed:
# the 20th shipped record frame dies, forcing a standby reconnect) ---
"$exe" serve --listen "unix:$psock" --db "$tmp/pdb" \
  --faults 'repl.send@20' \
  --read-timeout-ms 5000 >"$tmp/primary.out" 2>&1 &
primary_pid=$!
wait_sock "$psock" "primary"

"$exe" standby --listen "unix:$ssock" --db "$tmp/sdb" \
  --primary "unix:$psock" --repl-seed 42 \
  --read-timeout-ms 5000 >"$tmp/standby.out" 2>&1 &
standby_pid=$!
wait_sock "$ssock" "standby"

if ! sql "$psock" "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id));" \
  >"$tmp/seed.out" 2>&1; then
  say "FAIL: creating the drill table"
  sed "s/^/  | /" "$tmp/seed.out"
  exit 1
fi

# --- concurrent writers, each recording its acked ids ---
writers=4
rounds=20
for c in $(seq 1 "$writers"); do
  (
    for r in $(seq 1 "$rounds"); do
      id=$((c * 100000 + r))
      out=$(sql "$psock" "INSERT INTO t VALUES ($id);" 2>&1)
      case "$out" in
      *"1 row(s) inserted"*) echo "$id" >>"$tmp/acked.$c" ;;
      esac
    done
  ) &
  writer_pids="$writer_pids $!"
done
for p in $writer_pids; do wait "$p"; done
writer_pids=""
cat "$tmp"/acked.* | sort -n >"$tmp/acked" 2>/dev/null || : >"$tmp/acked"
acked=$(wc -l <"$tmp/acked")
if [ "$acked" -lt $((writers * rounds / 2)) ]; then
  say "FAIL: only $acked/$((writers * rounds)) writes acked — the drill needs load"
  exit 1
fi
say "$acked/$((writers * rounds)) writes acked"

# --- catch-up barrier: the standby must reach the primary's final LSN
# (replication is async; the oracle below is only fair after quiesce) ---
plsn=$(sql "$psock" "STATUS;" | grep -oE 'hub_lsn=[0-9]+' | cut -d= -f2)
if [ -z "$plsn" ]; then
  say "FAIL: primary STATUS has no hub_lsn"
  exit 1
fi
caught=0
for _ in $(seq 200); do
  st=$(sql "$ssock" "STATUS;" 2>/dev/null)
  case "$st" in
  *"applied_lsn=$plsn"*) caught=1 && break ;;
  esac
  sleep 0.05
done
if [ "$caught" -ne 1 ]; then
  say "FAIL: standby never caught up to lsn $plsn"
  sql "$ssock" "STATUS;" | sed "s/^/  | /"
  exit 1
fi
reconnects=$(sql "$ssock" "STATUS;" | grep -oE 'reconnects=[0-9]+' | cut -d= -f2)
say "standby caught up to lsn $plsn (reconnects=$reconnects after the injected repl.send fault)"

# --- the failure: no SIGTERM courtesy for the primary ---
kill -9 "$primary_pid"
wait "$primary_pid" 2>/dev/null
primary_pid=""
say "primary SIGKILLed"

# --- promote via the operator signal path ---
kill -USR1 "$standby_pid"
promoted=0
for _ in $(seq 200); do
  st=$(sql "$ssock" "STATUS;" 2>/dev/null)
  case "$st" in
  *"repl: role=primary"*) promoted=1 && break ;;
  esac
  sleep 0.05
done
if [ "$promoted" -ne 1 ]; then
  say "FAIL: standby never promoted after SIGUSR1"
  sed "s/^/  | /" "$tmp/standby.out"
  exit 1
fi
say "standby promoted"

# --- the oracle: every acked write survived the failover ---
sql "$ssock" "SELECT t.id FROM t;" >"$tmp/survivor.rows" 2>&1
missing=0
while IFS= read -r id; do
  if ! grep -qE "^$id *\$" "$tmp/survivor.rows"; then
    say "FAIL: acked id $id missing after failover"
    missing=1
  fi
done <"$tmp/acked"
if [ "$missing" -ne 0 ]; then
  exit 1
fi
say "all $acked acked writes present on the promoted node"

# --- and the survivor still takes writes and stops cleanly ---
if ! sql "$ssock" "INSERT INTO t VALUES (999999);" >/dev/null 2>&1; then
  say "FAIL: promoted node refused a write"
  exit 1
fi
kill -TERM "$standby_pid"
for _ in $(seq 100); do
  kill -0 "$standby_pid" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "$standby_pid" 2>/dev/null; then
  say "FAIL: promoted node ignored SIGTERM"
  exit 1
fi
standby_pid=""
say "OK"
