(* eagerdb — a small SQL engine demonstrating group-by pushdown
   (Yan & Larson, "Performing Group-By before Join", ICDE 1994).

   Subcommands:
     run FILE     execute a SQL script (SELECTs print results; EXPLAIN
                  SELECT prints the optimizer's reasoning and both plans)
     demo NAME    run a built-in workload report (fig1 | fig8 | ex3 | parts)
*)

open Eager_schema
open Eager_storage
open Eager_exec
open Eager_core
open Eager_opt
open Eager_parser
open Eager_durable
open Eager_workload
open Eager_robust

let print_table heap =
  let schema = Heap.schema heap in
  let headers =
    Array.map (fun (c, _) -> Colref.to_string c) (Schema.cols schema)
  in
  let rows =
    Heap.to_list heap
    |> List.map (fun row -> Array.map Eager_value.Value.to_string row)
  in
  let ncols = Array.length headers in
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) row)
    rows;
  let line cells =
    String.concat " | "
      (List.init ncols (fun i ->
           let s = if i < Array.length cells then cells.(i) else "" in
           s ^ String.make (widths.(i) - String.length s) ' '))
  in
  print_endline (line headers);
  print_endline (String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> print_endline (line r)) rows;
  Printf.printf "(%d rows)\n" (List.length rows)

type show = Results | Explain | Explain_analyze

(* A query failure is a diagnostic, not a process death: the governor or
   an execution error aborts only the statement, and the session (and
   database) stays usable. *)
let print_err e = Printf.printf "error: %s\n" (Err.to_string e)

let run_query db (q : Binder.bound_query) ~limits ~order ~(show : show) =
  (* fresh governor per statement: the deadline clock starts here; on a
     paged database the breakers also get a fresh spill budget and the
     planner costs page IOs *)
  let governor = Governor.create limits in
  let options =
    { Exec.default_options with governor; spill = Spill.for_db db }
  in
  let io = Cost.default_io db in
  let checked plan k =
    match Exec.run_checked ~options db plan with
    | Ok (heap, stats) -> k (heap, stats)
    | Error e -> print_err e
  in
  let analyze plan =
    let t0 = Unix.gettimeofday () in
    checked (Binder.apply_order order plan) (fun (heap, stats) ->
        Printf.printf "%s(%d rows in %.2f ms)\n" (Optree.to_string stats)
          (Heap.length heap)
          ((Unix.gettimeofday () -. t0) *. 1000.))
  in
  let finish plan =
    match show with
    | Explain ->
        print_endline (Eager_algebra.Plan.to_string (Binder.apply_order order plan))
    | Explain_analyze -> analyze plan
    | Results ->
        checked (Binder.apply_order order plan) (fun (heap, _) ->
            print_table heap)
  in
  match q with
  | Binder.Grouped input -> (
      match Canonical.of_input db input with
      | Ok cq -> (
          match Planner.decide ~governor ?io db cq with
          | Error e -> print_err e
          | Ok decision -> (
              match show with
              | Explain ->
                  print_string (Explain.text db decision);
                  if order <> [] then
                    print_endline "-- final output sorted per ORDER BY"
              | Explain_analyze ->
                  Printf.printf "-- plan: %s\n"
                    (Planner.kind_to_string decision.Planner.chosen_kind);
                  analyze decision.Planner.chosen
              | Results ->
                  let plan = Binder.apply_order order decision.Planner.chosen in
                  checked plan (fun (heap, _) ->
                      print_table heap;
                      Printf.printf "-- plan: %s\n"
                        (Planner.kind_to_string decision.Planner.chosen_kind))))
      | Error reason -> (
          (* outside the canonical class: run the straightforward plan *)
          match Binder.to_plan db q with
          | Ok plan ->
              if show <> Results then
                Printf.printf "-- not in the transformable class: %s\n" reason;
              finish plan
          | Error msg -> Printf.printf "error: %s\n" msg))
  | _ -> (
      match Binder.to_plan db q with
      | Ok plan -> finish plan
      | Error msg -> Printf.printf "error: %s\n" msg)

(* --faults "point@n,point2@m" arms deterministic one-shots; --fault-seed
   with --fault-rate arms a seeded random schedule over every registered
   injection point.  Both exist to rehearse failure handling from the
   CLI the same way the test harness does. *)
let arm_faults ?fault_points spec seed rate =
  let invalid fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("error: invalid --faults spec: " ^ m);
        exit 2)
      fmt
  in
  (match spec with
  | None -> ()
  | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun item ->
             let item = String.trim item in
             if item <> "" then begin
               let point, nth =
                 match String.index_opt item '@' with
                 | Some i ->
                     ( String.sub item 0 i,
                       int_of_string_opt
                         (String.sub item (i + 1) (String.length item - i - 1))
                     )
                 | None -> (item, Some 1)
               in
               if not (List.mem point Fault.all_points) then
                 invalid "unknown point %s (known: %s)" point
                   (String.concat ", " Fault.all_points);
               match nth with
               | Some n when n >= 1 -> Fault.arm_nth point n
               | _ ->
                   invalid "%s: the part after '@' must be a positive integer"
                     item
             end));
  let points =
    match fault_points with
    | None -> None
    | Some spec ->
        let pts =
          String.split_on_char ',' spec
          |> List.map String.trim
          |> List.filter (fun p -> p <> "")
        in
        List.iter
          (fun p ->
            if not (List.mem p Fault.all_points) then
              invalid "unknown point %s in --fault-points (known: %s)" p
                (String.concat ", " Fault.all_points))
          pts;
        if pts = [] then None else Some pts
  in
  match seed with
  | None -> ()
  | Some seed -> Fault.arm_seeded ~seed ~rate ?points ()

let print_outcome db ~limits = function
  | Binder.Created msg -> Printf.printf "%s\n" msg
  | Binder.Inserted n -> Printf.printf "%d row(s) inserted\n" n
  | Binder.Updated n -> Printf.printf "%d row(s) updated\n" n
  | Binder.Deleted n -> Printf.printf "%d row(s) deleted\n" n
  | Binder.Checkpointed lsn -> Printf.printf "checkpointed at wal lsn %d\n" lsn
  | Binder.Backed_up { dir; lsn } ->
      Printf.printf "backup written to %s at wal lsn %d\n" dir lsn
  | Binder.Promoted lsn ->
      Printf.printf "promoted to primary at wal lsn %d\n" lsn
  | Binder.Query (q, order) -> run_query db q ~limits ~order ~show:Results
  | Binder.Explained (q, order, an) ->
      run_query db q ~limits ~order
        ~show:(if an then Explain_analyze else Explain)

let print_recovery dir (r : Durable.recovery) =
  let opt n fmt = if n = 0 then [] else [ Printf.sprintf fmt n ] in
  Printf.printf "recovered %s: %s\n" dir
    (String.concat ", "
       ([ Printf.sprintf "snapshot lsn %d" r.Durable.snapshot_lsn;
          Printf.sprintf "%d record(s) replayed" r.Durable.replayed ]
       @ opt r.Durable.skipped_aborted "%d aborted record(s) skipped"
       @ opt r.Durable.skipped_failed "%d unappliable record(s) skipped"
       @ opt r.Durable.torn_bytes "%d torn byte(s) dropped"
       @ if r.Durable.finished_checkpoint then [ "finished an interrupted checkpoint" ] else []))

let final_save db save_dir =
  match save_dir with
  | None -> 0
  | Some dir -> (
      match Persist.save db ~dir with
      | Ok () ->
          Printf.printf "database saved to %s\n" dir;
          0
      | Error e ->
          Printf.eprintf "error saving %s: %s\n" dir (Err.to_string e);
          1)

let run_file db_dir save_dir limits storage wal checkpoint_every faults
    fault_seed fault_rate path =
  let src =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if wal then (
    match db_dir with
    | None ->
        prerr_endline
          "error: --wal needs --db DIR (the log lives beside the snapshot)";
        2
    | Some dir -> (
        (* arm before recovery so injected crashes exercise replay and
           checkpoint completion, not just fresh appends *)
        arm_faults faults fault_seed fault_rate;
        match Durable.open_ ?checkpoint_every ?storage ~dir () with
        | Error e ->
            Printf.eprintf "error recovering %s: %s\n" dir (Err.to_string e);
            1
        | Ok (session, recovery) ->
            print_recovery dir recovery;
            let db = Durable.db session in
            let rc =
              match
                Durable.run_script_with session src
                  ~f:(print_outcome db ~limits)
              with
              | Error e ->
                  Printf.eprintf "error: %s\n" (Err.to_string e);
                  1
              | Ok () -> 0
            in
            Durable.close session;
            if rc <> 0 then rc else final_save db save_dir))
  else
    let db =
      match db_dir with
      | None -> Database.create ?storage ()
      | Some dir -> (
          match Persist.load ?storage ~dir () with
          | Ok db ->
              Printf.printf "loaded database from %s\n" dir;
              db
          | Error e ->
              Printf.eprintf "error loading %s: %s\n" dir (Err.to_string e);
              exit 1)
    in
    arm_faults faults fault_seed fault_rate;
    (* execute eagerly so SELECTs interleaved with DML see the right state *)
    match Binder.run_script_with db src ~f:(print_outcome db ~limits) with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        1
    | Ok () -> final_save db save_dir

let repl limits storage =
  let db = ref (Database.create ?storage ()) in
  let timing = ref false in
  print_endline
    "eagerdb — SQL statements end with ';'.  \\q quits, \\h lists \
     meta-commands.  EXPLAIN SELECT shows both plans.";
  let meta line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "\\h" ] ->
        print_endline
          "\\d           list tables and views\n\
           \\d NAME      describe a table\n\
           \\save DIR    save the database\n\
           \\load DIR    load a database (replaces the session)\n\
           \\timing      toggle wall-clock reporting\n\
           \\q           quit"
    | [ "\\d" ] ->
        let cat = Database.catalog !db in
        List.iter
          (fun (td : Eager_catalog.Table_def.t) ->
            Printf.printf "table %-20s %6d row(s)\n" td.Eager_catalog.Table_def.tname
              (Database.row_count !db td.Eager_catalog.Table_def.tname))
          (Eager_catalog.Catalog.tables cat);
        List.iter
          (fun (v : Eager_catalog.Catalog.view_def) ->
            Printf.printf "view  %s\n" v.Eager_catalog.Catalog.vname)
          (Eager_catalog.Catalog.views cat);
        List.iter
          (fun (i : Eager_catalog.Catalog.index_def) ->
            Printf.printf "index %s ON %s (%s)\n" i.Eager_catalog.Catalog.iname
              i.Eager_catalog.Catalog.itable
              (String.concat ", " i.Eager_catalog.Catalog.icols))
          (Eager_catalog.Catalog.indexes cat)
    | [ "\\d"; name ] -> (
        match Eager_catalog.Catalog.find_table (Database.catalog !db) name with
        | Some td ->
            print_endline (Format.asprintf "%a" Eager_catalog.Table_def.pp td)
        | None -> Printf.printf "unknown table %s\n" name)
    | [ "\\save"; dir ] -> (
        match Persist.save !db ~dir with
        | Ok () -> Printf.printf "saved to %s\n" dir
        | Error e -> print_err e)
    | [ "\\load"; dir ] -> (
        match Persist.load ~dir () with
        | Ok d ->
            db := d;
            Printf.printf "loaded %s\n" dir
        | Error e -> print_err e)
    | [ "\\timing" ] ->
        timing := not !timing;
        Printf.printf "timing %s\n" (if !timing then "on" else "off")
    | _ -> print_endline "unknown meta-command (\\h for help)"
  in
  let buffer = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buffer = 0 then "eagerdb> " else "     ... ");
    flush stdout;
    match input_line stdin with
    | exception End_of_file -> 0
    | line when String.trim line = "\\q" && Buffer.length buffer = 0 -> 0
    | line
      when Buffer.length buffer = 0
           && String.length (String.trim line) > 0
           && (String.trim line).[0] = '\\' ->
        meta line;
        loop ()
    | line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        let trimmed = String.trim text in
        if String.length trimmed > 0
           && trimmed.[String.length trimmed - 1] = ';'
        then begin
          Buffer.clear buffer;
          let t0 = Unix.gettimeofday () in
          (match
             Binder.run_script_with !db text ~f:(fun o ->
                 print_outcome !db ~limits o)
           with
          | Error msg -> Printf.printf "error: %s\n" msg
          | Ok () -> ());
          if !timing then
            Printf.printf "time: %.2f ms\n"
              ((Unix.gettimeofday () -. t0) *. 1000.);
          loop ()
        end
        else loop ()
  in
  loop ()

let demo name =
  let report db (q : Canonical.t) =
    let decision =
      match Planner.decide db q with
      | Ok d -> d
      | Error e ->
          print_err e;
          exit 1
    in
    print_string (Explain.text db decision);
    let h1, s1 = Exec.run db (Plans.e1 db q) in
    print_endline "-- executed E1:";
    print_endline (Optree.to_string s1);
    (match decision.Planner.plan_eager with
    | Some p2 ->
        let h2, s2 = Exec.run db p2 in
        print_endline "-- executed E2:";
        print_endline (Optree.to_string s2);
        Printf.printf "results equal: %b\n"
          (Exec.multiset_equal (Heap.to_list h1) (Heap.to_list h2))
    | None -> ());
    0
  in
  match name with
  | "fig1" ->
      let w = Employee_dept.setup () in
      report w.Employee_dept.db w.Employee_dept.query
  | "fig8" ->
      let w = Contrived.setup () in
      report w.Contrived.db w.Contrived.query
  | "ex3" ->
      let w = Printers.setup () in
      report w.Printers.db w.Printers.query
  | "parts" ->
      let w = Parts.setup () in
      report w.Parts.db w.Parts.query
  | "sales" ->
      let w = Sales.setup () in
      report w.Sales.db w.Sales.query
  | _ ->
      Printf.eprintf
        "unknown demo %s (try: fig1 | fig8 | ex3 | parts | sales)\n" name;
      1

(* the concurrent session server (lib/server): accept/commit/session
   threads, snapshot-isolated readers, group-committed writers.
   [primary] switches the node into standby mode: read-only, following
   that address's WAL stream until PROMOTE (or SIGUSR1) flips it. *)
let serve_main ~primary ~repl_seed ~repl_retain ~peers ~lease_ms
    ~no_auto_failover ~storage listen_s db_dir checkpoint_every max_sessions
    max_active max_queued max_wait_ms global_rows statement_limits
    read_timeout_ms die_on_broken_wal faults fault_seed fault_rate fault_points
    =
  let open Eager_server in
  arm_faults ?fault_points faults fault_seed fault_rate;
  let peers =
    List.concat_map (String.split_on_char ',') peers
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match Client.parse_addr s with
           | Ok a -> a
           | Error m ->
               prerr_endline ("error: invalid --peers address: " ^ m);
               exit 2)
  in
  let listen =
    match Client.parse_addr listen_s with
    | Ok (Client.A_unix p) -> Server.L_unix p
    | Ok (Client.A_tcp (h, p)) -> Server.L_tcp (h, p)
    | Error m ->
        prerr_endline ("error: invalid --listen address: " ^ m);
        exit 2
  in
  let role =
    match primary with
    | None -> Server.Primary
    | Some addr_s -> (
        match Client.parse_addr addr_s with
        | Ok primary -> Server.Standby { primary; repl_seed }
        | Error m ->
            prerr_endline ("error: invalid --primary address: " ^ m);
            exit 2)
  in
  let admission =
    {
      Admission.max_sessions;
      max_active;
      max_queued;
      max_wait_ms;
      global_rows;
      statement_limits;
    }
  in
  let cfg =
    {
      Server.listen;
      admission;
      read_timeout_ms;
      db_dir;
      storage;
      checkpoint_every;
      die_on_broken_wal;
      role;
      repl_retain;
      peers;
      lease_ms;
      auto_failover = not no_auto_failover;
    }
  in
  match Server.start cfg with
  | Error e ->
      Printf.eprintf "error: %s\n" (Err.to_string e);
      1
  | Ok (t, recovery) -> (
      (match (db_dir, recovery) with
      | Some dir, Some r -> print_recovery dir r
      | _ -> ());
      (match role with
      | Server.Standby _ ->
          Printf.printf "eagerdb standby listening on %s (following %s)\n%!"
            (Server.bound_addr t)
            (Option.value primary ~default:"?")
      | Server.Primary ->
          Printf.printf "eagerdb listening on %s\n%!" (Server.bound_addr t));
      (* the handler only requests the stop; the joins happen on a
         helper thread so the handler itself never blocks *)
      let request_stop _ = ignore (Thread.create (fun () -> Server.stop t) ()) in
      List.iter
        (fun s ->
          try Sys.set_signal s (Sys.Signal_handle request_stop)
          with Invalid_argument _ -> ())
        [ Sys.sigint; Sys.sigterm ];
      (* SIGUSR1 = operator-driven promotion.  The handler only raises a
         flag; a poll thread does the actual (joining) work, because a
         signal handler must never block on a thread join *)
      let want_promote = ref false in
      (try
         Sys.set_signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> want_promote := true))
       with Invalid_argument _ -> ());
      ignore
        (Thread.create
           (fun () ->
             while true do
               if !want_promote then begin
                 want_promote := false;
                 match Server.promote t with
                 | Ok lsn ->
                     Printf.printf "promoted to primary at wal lsn %d\n%!" lsn
                 | Error e ->
                     Printf.eprintf "promote: %s\n%!" (Err.to_string e)
               end;
               Clock.sleep_ms 100.
             done)
           ());
      match Server.wait t with
      | Ok () ->
          print_endline "eagerdb: shut down";
          0
      | Error e ->
          Printf.eprintf "fatal: %s\n%!" (Err.to_string e);
          1)

(* offline backup: open (recover) the directory, seal a backup of it.
   The hot path — no downtime, commit-queue barrier — is the BACKUP
   statement against a running server: eagerdb sql "BACKUP 'dest'" *)
let backup_main db_dir dest faults fault_seed fault_rate =
  arm_faults faults fault_seed fault_rate;
  match Durable.open_ ~dir:db_dir () with
  | Error e ->
      Printf.eprintf "error recovering %s: %s\n" db_dir (Err.to_string e);
      1
  | Ok (session, recovery) ->
      print_recovery db_dir recovery;
      let r = Durable.backup session ~dir:dest in
      Durable.close session;
      (match r with
      | Ok lsn ->
          Printf.printf "backup written to %s at wal lsn %d\n" dest lsn;
          0
      | Error e ->
          Printf.eprintf "error: %s\n" (Err.to_string e);
          1)

let restore_main verify_only src dest =
  if verify_only then (
    match Backup.verify ~dir:src with
    | Ok lsn ->
        Printf.printf "backup %s verifies at wal lsn %d\n" src lsn;
        0
    | Error e ->
        Printf.eprintf "error: %s\n" (Err.to_string e);
        1)
  else
    match dest with
    | None ->
        prerr_endline
          "error: restore needs a destination directory (or --verify-only)";
        2
    | Some dest -> (
        match Backup.restore ~from_dir:src ~to_dir:dest with
        | Error e ->
            Printf.eprintf "error: %s\n" (Err.to_string e);
            1
        | Ok lsn -> (
            (* prove the restored directory actually recovers *)
            match Durable.open_ ~dir:dest () with
            | Ok (s, recovery) ->
                print_recovery dest recovery;
                Durable.close s;
                Printf.printf "restored %s into %s (backup lsn %d)\n" src dest
                  lsn;
                0
            | Error e ->
                Printf.eprintf
                  "error: backup verified and copied, but the restored \
                   directory failed recovery: %s\n"
                  (Err.to_string e);
                1))

let sql_main connect timeout_ms retries backoff_ms seed redirects script file =
  let open Eager_server in
  match Client.parse_addr connect with
  | Error m ->
      prerr_endline ("error: invalid --connect address: " ^ m);
      2
  | Ok addr -> (
      let cfg =
        Client.config ~timeout_ms ~retries ~backoff_ms ~seed ~redirects addr
      in
      let src =
        match (script, file) with
        | Some s, None -> Ok s
        | None, Some path ->
            let ic = open_in path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Ok s
        | None, None -> Ok (In_channel.input_all In_channel.stdin)
        | Some _, Some _ -> Error "give SQL either inline or with -f, not both"
      in
      match src with
      | Error m ->
          prerr_endline ("error: " ^ m);
          2
      | Ok src -> (
          match Client.run cfg src with
          | Ok (Client.Ok_text txt) ->
              print_string txt;
              0
          | Ok (Client.Refused { retry_after_ms; msg }) ->
              Printf.eprintf
                "refused after retries (server says retry in %d ms): %s\n"
                retry_after_ms msg;
              3
          | Ok (Client.Failed { kind; msg }) ->
              print_string msg;
              Printf.eprintf "statement failed [%s]\n" kind;
              1
          | Error e ->
              Printf.eprintf "error: %s\n" (Err.to_string e);
              1))

open Cmdliner

(* resource-limit flags shared by [run] and [repl]; each query gets a
   fresh governor built from these limits *)
let limits_term =
  let max_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rows" ] ~docv:"N"
          ~doc:
            "Abort a query once it has materialized more than $(docv) rows \
             across all operators (a typed Resource error; the session \
             survives)")
  in
  let max_groups =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-groups" ] ~docv:"N"
          ~doc:
            "Abort a query whose aggregation hash table exceeds $(docv) \
             entries")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-query wall-clock budget in milliseconds")
  in
  let max_page_ios =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-page-ios" ] ~docv:"N"
          ~doc:
            "Abort a query once it has caused more than $(docv) physical \
             page transfers (buffer-pool miss reads, eviction write-backs, \
             spill pages); only meaningful with $(b,--pages)")
  in
  Term.(
    const (fun max_rows max_groups deadline_ms max_page_ios ->
        { Governor.max_rows; max_groups; deadline_ms; max_page_ios })
    $ max_rows $ max_groups $ deadline_ms $ max_page_ios)

(* paged-storage flags shared by [run], [repl] and [serve]: they select
   the buffer-pool-backed engine instead of the default RAM heaps *)
let storage_term =
  let pages =
    Arg.(
      value
      & opt (some int) None
      & info [ "pages" ] ~docv:"N"
          ~doc:
            "Run over the paged storage engine with an $(docv)-page buffer \
             pool (LRU-K replacement, checksummed 4 KiB pages).  0 means \
             paged but unbounded — every page stays resident")
  in
  let page_size =
    Arg.(
      value & opt int 4096
      & info [ "page-size" ] ~docv:"BYTES"
          ~doc:"Page size in bytes for the paged engine (default 4096)")
  in
  let spill_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Scratch directory for operator spill runs (external sorts, \
             grace hash joins, spilling aggregation).  Implies the paged \
             engine; without --pages the pool is unbounded")
  in
  Term.(
    const (fun pages page_size spill_dir ->
        match (pages, spill_dir) with
        | None, None -> None
        | _ ->
            Some
              {
                Database.pool_pages =
                  (match pages with Some 0 -> None | p -> p);
                page_size;
                spill_dir;
              })
    $ pages $ page_size $ spill_dir)

(* fault-injection flags shared by [run] and [serve] *)
let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm fault-injection one-shots, e.g. \
           'persist.rename\\@1,exec.next\\@3' (fire on the n-th hit)")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Arm a seeded random fault schedule over all injection points")

let fault_rate_arg =
  Arg.(
    value & opt float 0.01
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:"Firing probability per hit for --fault-seed (default 0.01)")

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let db_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR"
          ~doc:
            "Load the database from $(docv) first (with --wal the directory \
             is created if missing)")
  in
  let wal =
    Arg.(
      value & flag
      & info [ "wal" ]
          ~doc:
            "Write-ahead-log every DML/DDL statement to DIR/wal.eagerdb \
             before applying it, and replay the log on startup; requires \
             --db.  The CHECKPOINT statement snapshots and truncates the log")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"With --wal, checkpoint automatically every $(docv) logged \
                statements")
  in
  let save_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Save the database to $(docv) after the script")
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a SQL script")
    Term.(
      const run_file $ db_dir $ save_dir $ limits_term $ storage_term $ wal
      $ checkpoint_every $ faults_arg $ fault_seed_arg $ fault_rate_arg $ file)

let demo_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a built-in paper workload (fig1|fig8|ex3|parts)")
    Term.(const demo $ name_arg)

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL shell on an in-memory database")
    Term.(const repl $ limits_term $ storage_term)

(* the differential fuzzing harness: the Main Theorem as an oracle *)
let fuzz seed iters no_faults corpus replay multiway quiet =
  let open Eager_fuzz in
  match replay with
  | Some dir -> (
      match Corpus.replay_dir dir with
      | Ok (files, selects) ->
          Printf.printf "corpus replay: %d file(s), %d query(ies), all green\n"
            files selects;
          0
      | Error msg ->
          Printf.printf "corpus replay FAILED: %s\n" msg;
          1)
  | None ->
      let log = if quiet then ignore else print_endline in
      let cfg =
        { Fuzz.seed; iters; faults = not no_faults; corpus_dir = corpus; log }
      in
      if multiway then (
        let s = Fuzz.run_multiway cfg in
        print_endline (Fuzz.multiway_summary_to_string s);
        match s.Fuzz.mw_failures with
        | [] -> 0
        | failures ->
            List.iter
              (fun (f : Fuzz.multiway_failure) ->
                Printf.printf "  iteration %d: %s%s\n" f.Fuzz.mw_iteration
                  (Oracle.violation_to_string f.Fuzz.mw_violation)
                  (match f.Fuzz.mw_corpus_path with
                  | Some p -> " -> " ^ p
                  | None -> ""))
              failures;
            1)
      else
        let s = Fuzz.run cfg in
        print_endline (Fuzz.summary_to_string s);
        match s.Fuzz.failures with
        | [] -> 0
        | failures ->
            List.iter
              (fun (f : Fuzz.failure) ->
                Printf.printf "  iteration %d: %s%s\n" f.Fuzz.iteration
                  (Oracle.violation_to_string f.Fuzz.violation)
                  (match f.Fuzz.corpus_path with
                  | Some p -> " -> " ^ p
                  | None -> ""))
              failures;
            1

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 20260806
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Run seed.  Iteration $(i,i) draws from the independent stream \
             (seed, i), so any failure replays standalone")
  in
  let iters =
    Arg.(
      value & opt int 500
      & info [ "iters" ] ~docv:"K" ~doc:"Number of generated instances")
  in
  let no_faults =
    Arg.(
      value & flag
      & info [ "no-faults" ]
          ~doc:"Skip the injected-fault and governor-budget checks")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Write shrunk repros of any violation to $(docv) as .sql files")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Instead of generating, replay every .sql under $(docv) through \
             the parser/binder and re-run the oracle on each")
  in
  let multiway =
    Arg.(
      value & flag
      & info [ "multiway" ]
          ~doc:
            "Generate 3-4 relation chain/star instances instead of the \
             two-relation canonical form, and sweep every forced \
             aggregation placement (full and partial at each admissible \
             cut) against forced E1 and the reference evaluator")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the summary line")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: execute generated queries as forced-E1, \
          forced-E2 and planner's choice, and check the Main Theorem's \
          invariants as an executable oracle")
    Term.(
      const fuzz $ seed $ iters $ no_faults $ corpus $ replay $ multiway
      $ quiet)

(* the failover chaos harness: seeded 3-node cluster schedules *)
let chaos seed schedules max_seconds quiet =
  Eager_fuzz.Chaos.run ~exe:Sys.executable_name ~seed ~schedules ~max_seconds
    ~quiet

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int 20260808
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Sweep seed.  Schedule $(i,i) derives its private generator and \
             the spawned servers' fault schedules from (seed, i), so a \
             failing schedule replays standalone")
  in
  let schedules =
    Arg.(
      value & opt int 8
      & info [ "schedules" ] ~docv:"K"
          ~doc:
            "Number of schedules; fault templates (primary SIGKILL, \
             SIGSTOP/SIGCONT partition, backwards clock jumps, slow \
             fsyncs) cycle round-robin")
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Wall-clock cap: stop launching new schedules after $(docv) \
             seconds (started schedules always finish)")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Only print failures and the summary line")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Failover chaos harness: boot seeded 3-node clusters, inject one \
          fault per schedule, and check that exactly one node stays \
          writable, every acked write survives on the final primary, and \
          the standbys converge to byte-identical WALs")
    Term.(const chaos $ seed $ schedules $ max_seconds $ quiet)

(* server flags shared by [serve] and [standby] *)
let srv_listen =
  Arg.(
    value
    & opt string "unix:/tmp/eagerdb.sock"
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: unix:PATH or tcp:HOST:PORT (port 0 picks a free \
           port; the chosen one is in the 'listening on' line)")

let srv_db_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR"
        ~doc:
          "Serve a durable database under $(docv): writes are \
           write-ahead-logged with group commit and recovery runs at \
           startup.  Without it the server is in-memory")

let srv_checkpoint_every =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"With --db, checkpoint automatically every $(docv) logged \
              statements")

let srv_max_sessions =
  Arg.(
    value & opt int 64
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Concurrent connections before refusing new sessions")

let srv_max_active =
  Arg.(
    value & opt int 8
    & info [ "max-active" ] ~docv:"N"
        ~doc:"Statements executing at once; excess arrivals queue fairly")

let srv_max_queued =
  Arg.(
    value & opt int 32
    & info [ "max-queued" ] ~docv:"N"
        ~doc:"Queued statements before shedding load with BUSY")

let srv_max_wait_ms =
  Arg.(
    value & opt float 2000.
    & info [ "max-wait-ms" ] ~docv:"MS"
        ~doc:"Queue-wait budget before a statement is refused")

let srv_global_rows =
  Arg.(
    value
    & opt (some int) None
    & info [ "global-rows" ] ~docv:"N"
        ~doc:
          "Aggregate row budget across every executing statement (the \
           global pool behind per-statement --max-rows)")

let srv_read_timeout_ms =
  Arg.(
    value & opt float 30_000.
    & info [ "read-timeout-ms" ] ~docv:"MS"
        ~doc:"Per-frame socket read deadline (also the idle-session \
              timeout)")

let srv_die_on_broken_wal =
  Arg.(
    value & flag
    & info [ "die-on-broken-wal" ]
        ~doc:
          "Treat a poisoned write-ahead log as fatal and stop the server \
           instead of degrading to read-only (the crash-test harness uses \
           this to turn injected log faults into process deaths)")

let srv_repl_retain =
  Arg.(
    value & opt int 1024
    & info [ "repl-retain" ] ~docv:"N"
        ~doc:
          "Committed WAL records kept in memory for replication catch-up; \
           standbys further behind are caught up from the on-disk log, and \
           past a checkpoint truncation told to re-seed from a backup")

let srv_repl_seed =
  Arg.(
    value & opt int 1
    & info [ "repl-seed" ] ~docv:"N"
        ~doc:"Jitter seed for the standby's reconnect backoff (explicit so \
              failover drills are reproducible)")

let srv_peers =
  Arg.(
    value & opt_all string []
    & info [ "peers" ] ~docv:"ADDRS"
        ~doc:
          "The OTHER nodes of the cluster (comma-separated or repeated; \
           unix:PATH or tcp:HOST:PORT).  Naming them arms lease-based \
           automated failover: the primary grants leases over its \
           replication streams and suspends writes when no standby \
           acknowledges it within --lease-ms; a standby whose lease \
           observation lapses elects deterministically among the peers \
           (highest applied LSN wins, ties to the smallest address) and \
           promotes itself, bumping the cluster epoch that fences the old \
           primary out")

let srv_lease_ms =
  Arg.(
    value & opt float 1000.
    & info [ "lease-ms" ] ~docv:"MS"
        ~doc:
          "The write-lease window: how long the primary may keep acking \
           writes after its last successful ship to a standby, and how \
           long a standby waits (plus a skew margin) after the last grant \
           before electing")

let srv_no_auto_failover =
  Arg.(
    value & flag
    & info [ "no-auto-failover" ]
        ~doc:
          "Keep replication and epoch fencing, but never elect, suspend or \
           self-promote: promotion stays manual (PROMOTE or SIGUSR1) even \
           when --peers is set")

let fault_points_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-points" ] ~docv:"POINTS"
        ~doc:
          "With --fault-seed, restrict the seeded schedule to this \
           comma-separated subset of injection points (the chaos harness \
           uses this to aim at one subsystem at a time)")

let serve_term primary_t =
  Term.(
    const
      (fun primary repl_seed repl_retain peers lease_ms no_auto_failover
           storage ->
        serve_main ~primary ~repl_seed ~repl_retain ~peers ~lease_ms
          ~no_auto_failover ~storage)
    $ primary_t $ srv_repl_seed $ srv_repl_retain $ srv_peers $ srv_lease_ms
    $ srv_no_auto_failover $ storage_term $ srv_listen $ srv_db_dir
    $ srv_checkpoint_every $ srv_max_sessions $ srv_max_active $ srv_max_queued
    $ srv_max_wait_ms $ srv_global_rows $ limits_term $ srv_read_timeout_ms
    $ srv_die_on_broken_wal $ faults_arg $ fault_seed_arg $ fault_rate_arg
    $ fault_points_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve concurrent SQL sessions over a socket (snapshot-isolated \
          reads, group-committed writes, admission control).  A durable \
          server also serves REPL streams to standbys and the BACKUP \
          statement; with --peers it takes part in lease-based automated \
          failover (leases ride the replication stream, elections are \
          deterministic, every promotion bumps an epoch that fences the \
          old primary out)")
    (serve_term Term.(const None))

let standby_cmd =
  let primary =
    Arg.(
      required
      & opt (some string) None
      & info [ "primary" ] ~docv:"ADDR"
          ~doc:
            "The primary to follow (unix:PATH or tcp:HOST:PORT).  The \
             standby serves reads and STATUS only, replays the primary's \
             WAL stream as it arrives, reconnects with jittered backoff \
             when the stream breaks, and becomes a primary on PROMOTE (or \
             SIGUSR1)")
  in
  Cmd.v
    (Cmd.info "standby"
       ~doc:
         "Serve a read-only hot standby replaying a primary's WAL stream \
          (requires --db; PROMOTE or SIGUSR1 fails over)")
    (serve_term Term.(const Option.some $ primary))

let backup_cmd =
  let db_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR" ~doc:"The database directory to back up")
  in
  let dest =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DEST")
  in
  Cmd.v
    (Cmd.info "backup"
       ~doc:
         "Write a checksummed, LSN-stamped backup (snapshot + WAL tail + \
          manifest) of a database directory into a fresh DEST.  This \
          subcommand opens the directory itself — for a hot backup of a \
          live server, run the BACKUP statement through it instead: \
          eagerdb sql \"BACKUP 'DEST'\"")
    Term.(
      const backup_main $ db_dir $ dest $ faults_arg $ fault_seed_arg
      $ fault_rate_arg)

let restore_cmd =
  let verify_only =
    Arg.(
      value & flag
      & info [ "verify-only" ]
          ~doc:"Only verify the backup's checksums and LSN stamps; write \
                nothing")
  in
  let src =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BACKUP_DIR")
  in
  let dest = Arg.(value & pos 1 (some string) None & info [] ~docv:"DEST") in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Verify a backup end to end (manifest checksums, snapshot trailer, \
          full WAL scan — any corrupted byte is a typed refusal) and copy \
          it into a fresh DEST ready to serve")
    Term.(const restore_main $ verify_only $ src $ dest)

let sql_cmd =
  let connect =
    Arg.(
      value
      & opt string "unix:/tmp/eagerdb.sock"
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server address: unix:PATH or tcp:HOST:PORT")
  in
  let timeout =
    Arg.(
      value & opt float 30_000.
      & info [ "timeout" ] ~docv:"MS"
          ~doc:"Per-response read deadline in milliseconds")
  in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry budget for transient failures and BUSY shed responses \
             (jittered exponential backoff, honouring the server's \
             retry-after hint)")
  in
  let backoff =
    Arg.(
      value & opt float 25.
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base backoff between retries, doubled per attempt")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "retry-seed" ] ~docv:"N"
          ~doc:"Jitter seed (explicit so retry schedules are reproducible)")
  in
  let redirects =
    Arg.(
      value & opt int 2
      & info [ "redirects" ] ~docv:"N"
          ~doc:
            "Fenced redirects to follow before giving up: a node that lost \
             (or never held) the write lease refuses with a typed Fenced \
             error naming the new primary, and the client re-aims the \
             script there (duplicate-safe — the refusal precedes \
             execution).  0 pins the client to --connect")
  in
  let script =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:
            "Read the SQL script from $(docv) (stdin if neither SQL nor -f \
             is given)")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Send a SQL script to a running server")
    Term.(
      const sql_main $ connect $ timeout $ retries $ backoff $ seed
      $ redirects $ script $ file)

let () =
  let main =
    Cmd.group
      (Cmd.info "eagerdb" ~version:"1.0.0"
         ~doc:"Group-by pushdown demonstrator (Yan & Larson, ICDE 1994)")
      [ run_cmd; demo_cmd; repl_cmd; fuzz_cmd; chaos_cmd; serve_cmd;
        standby_cmd; backup_cmd; restore_cmd; sql_cmd ]
  in
  exit (Cmd.eval' main)
