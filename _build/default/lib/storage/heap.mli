(** A heap table: a growable multiset of rows with a fixed schema.

    Rows are identified by their insertion position, which serves as the
    paper's [RowID] — the column that "uniquely identifies a row" and lets
    the formalism distinguish duplicates (Section 4.3).  The RowID is not
    part of the schema; operators that need it use {!iteri}. *)

open Eager_schema

type t

val create : Schema.t -> t
val of_rows : Schema.t -> Row.t list -> t
val schema : t -> Schema.t
val length : t -> int
val insert : t -> Row.t -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val get : t -> int -> Row.t
val iter : (Row.t -> unit) -> t -> unit
val iteri : (int -> Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Row.t list
val to_seq : t -> Row.t Seq.t
val exists : (Row.t -> bool) -> t -> bool
val generation : t -> int
(** Monotone counter bumped on every insert; used to invalidate caches. *)

val delete_where : (Row.t -> bool) -> t -> int
(** Remove matching rows in place; returns the count.  Bumps
    {!compactions} (incremental caches must rebuild). *)

val replace_all : t -> Row.t list -> unit
(** Replace the heap's contents wholesale (used by UPDATE).  Bumps
    {!compactions}. *)

val compactions : t -> int
(** Counter bumped by every structural rewrite ([delete_where],
    [replace_all]).  Append-only consumers (incremental key indexes) must
    fully rebuild when it changes. *)
