(** Per-column statistics used by the optimizer's cardinality estimator. *)

open Eager_schema

type histogram = {
  lo : float;
  hi : float;
  counts : int array;  (** equi-width buckets over [lo, hi] *)
  total : int;  (** non-NULL numeric values summarised *)
}

type col_stats = {
  ndv : int;  (** number of distinct non-NULL values *)
  nulls : int;
  min_v : Eager_value.Value.t;  (** Null when the column is all NULL/empty *)
  max_v : Eager_value.Value.t;
  hist : histogram option;  (** present for numeric columns with data *)
}

val fraction_below : histogram -> float -> float
(** Estimated fraction of summarised values strictly below [v], with linear
    interpolation inside the straddled bucket.  Clamped to [0, 1]. *)

type t

val collect : Heap.t -> t
val row_count : t -> int
val col : t -> int -> col_stats
val col_by_ref : t -> Schema.t -> Colref.t -> col_stats
val ndv_of_cols : t -> int array -> int
(** Estimated number of distinct combinations over a column set:
    min(row count, product of per-column ndv, capped to avoid overflow). *)

val pp : Format.formatter -> t -> unit
