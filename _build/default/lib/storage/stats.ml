open Eager_value
open Eager_schema

type histogram = { lo : float; hi : float; counts : int array; total : int }

type col_stats = {
  ndv : int;
  nulls : int;
  min_v : Value.t;
  max_v : Value.t;
  hist : histogram option;
}

type t = { rows : int; cols : col_stats array }

let bucket_count = 16

let as_float = function
  | Value.Int n -> Some (float_of_int n)
  | Value.Float f -> Some f
  | _ -> None

let fraction_below h v =
  if h.total = 0 then 0.
  else if v <= h.lo then 0.
  else if v > h.hi then 1.
  else begin
    let width = (h.hi -. h.lo) /. float_of_int (Array.length h.counts) in
    let width = if width <= 0. then 1. else width in
    let pos = (v -. h.lo) /. width in
    let full = min (int_of_float pos) (Array.length h.counts) in
    let below = ref 0. in
    for i = 0 to full - 1 do
      below := !below +. float_of_int h.counts.(i)
    done;
    (* interpolate within the straddled bucket *)
    if full < Array.length h.counts then begin
      let frac = pos -. float_of_int full in
      below := !below +. (frac *. float_of_int h.counts.(full))
    end;
    Float.max 0. (Float.min 1. (!below /. float_of_int h.total))
  end

let collect heap =
  let arity = Schema.arity (Heap.schema heap) in
  let seen = Array.init arity (fun _ -> Hashtbl.create 64) in
  let nulls = Array.make arity 0 in
  let mins = Array.make arity Value.Null in
  let maxs = Array.make arity Value.Null in
  Heap.iter
    (fun row ->
      for i = 0 to arity - 1 do
        let v = row.(i) in
        if Value.is_null v then nulls.(i) <- nulls.(i) + 1
        else begin
          let key = Row.key_on [| 0 |] [| v |] in
          if not (Hashtbl.mem seen.(i) key) then Hashtbl.add seen.(i) key ();
          (if Value.is_null mins.(i) || Value.compare_total v mins.(i) < 0 then
             mins.(i) <- v);
          if Value.is_null maxs.(i) || Value.compare_total v maxs.(i) > 0 then
            maxs.(i) <- v
        end
      done)
    heap;
  (* second pass: equi-width histograms for numeric columns *)
  let hists =
    Array.init arity (fun i ->
        match as_float mins.(i), as_float maxs.(i) with
        | Some lo, Some hi when Heap.length heap > 0 ->
            Some (lo, hi, Array.make bucket_count 0, ref 0)
        | _ -> None)
  in
  Heap.iter
    (fun row ->
      for i = 0 to arity - 1 do
        match hists.(i), as_float row.(i) with
        | Some (lo, hi, counts, total), Some f ->
            let width = (hi -. lo) /. float_of_int bucket_count in
            let b =
              if width <= 0. then 0
              else min (bucket_count - 1) (int_of_float ((f -. lo) /. width))
            in
            counts.(b) <- counts.(b) + 1;
            incr total
        | _ -> ()
      done)
    heap;
  {
    rows = Heap.length heap;
    cols =
      Array.init arity (fun i ->
          {
            ndv = Hashtbl.length seen.(i);
            nulls = nulls.(i);
            min_v = mins.(i);
            max_v = maxs.(i);
            hist =
              (match hists.(i) with
              | Some (lo, hi, counts, total) when !total > 0 ->
                  Some { lo; hi; counts; total = !total }
              | _ -> None);
          });
  }

let row_count t = t.rows
let col t i = t.cols.(i)
let col_by_ref t schema c = t.cols.(Schema.index_of schema c)

let ndv_of_cols t idxs =
  if Array.length idxs = 0 then 1
  else begin
    let product = ref 1.0 in
    Array.iter
      (fun i ->
        let s = t.cols.(i) in
        let d = max 1 (s.ndv + if s.nulls > 0 then 1 else 0) in
        product := !product *. float_of_int d)
      idxs;
    let capped = Float.min !product (float_of_int t.rows) in
    max 1 (int_of_float capped)
  end

let pp ppf t =
  Format.fprintf ppf "rows=%d" t.rows;
  Array.iteri
    (fun i c -> Format.fprintf ppf " [%d: ndv=%d nulls=%d]" i c.ndv c.nulls)
    t.cols
