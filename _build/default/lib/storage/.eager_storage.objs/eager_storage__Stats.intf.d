lib/storage/stats.mli: Colref Eager_schema Eager_value Format Heap Schema
