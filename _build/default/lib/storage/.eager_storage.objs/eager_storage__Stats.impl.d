lib/storage/stats.ml: Array Eager_schema Eager_value Float Format Hashtbl Heap Row Schema Value
