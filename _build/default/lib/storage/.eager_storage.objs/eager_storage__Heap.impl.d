lib/storage/heap.ml: Array Eager_schema List Printf Row Schema Seq
