lib/storage/database.ml: Array Catalog Colref Constr Ctype Eager_catalog Eager_expr Eager_schema Eager_value Expr Fun Hashtbl Heap List Printf Result Row Schema Stats String Table_def Tbool Value
