lib/storage/heap.mli: Eager_schema Row Schema Seq
