lib/storage/database.mli: Catalog Eager_catalog Eager_expr Eager_schema Eager_value Heap Stats Table_def Value
