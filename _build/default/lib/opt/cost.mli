(** Plan costing.

    Mirrors the executor's algorithms: a hash join costs its inputs plus its
    output, a nested-loop join (used when no equi-join conjunct exists)
    costs the product of its inputs, hash grouping costs its input, sort
    grouping costs [n log n].  Units are abstract "row touches"; only
    comparisons between plans are meaningful. *)

open Eager_storage
open Eager_algebra

type breakdown = {
  total : float;
  node_label : string;
  node_cost : float;  (** this operator alone *)
  out_card : float;
  inputs : breakdown list;
}

val cost : ?sort_group:bool -> Database.t -> Plan.t -> float
val breakdown : ?sort_group:bool -> Database.t -> Plan.t -> breakdown
val pp_breakdown : Format.formatter -> breakdown -> unit
