(** Recognising singleton groups — Klug's observation with Dayal's key
    condition, generalised to derived keys (paper Section 2).

    Klug observed that the result of a join is sometimes "already grouped";
    Dayal stated the condition: the grouping columns contain a key of the
    join's outer table.  With the attribute-closure machinery this
    generalises: if the closure of the grouping columns — under the key
    dependencies of the scanned tables and the equality/constant atoms of
    the predicates below the group — covers a reliable (NOT NULL) key of
    {i every} scanned table, then each group contains exactly one row and
    the executor can skip hashing/sorting entirely.

    The full-coverage requirement matters: grouping on a key of only one
    table of a join still admits multi-row groups through the other table,
    and a table without any reliable key can hold duplicate rows that are
    [=ⁿ]-equal everywhere, so it can never be covered. *)

open Eager_storage
open Eager_algebra

val groups_are_unique : Database.t -> by:Eager_schema.Colref.t list -> Plan.t -> bool
(** Can we prove that grouping [input] on [by] yields singleton groups? *)

val mark : Database.t -> Plan.t -> Plan.t
(** Rewrite the plan, setting [unique_groups] on every [Group] node whose
    singleton property is provable.  Sound: the flag is only set when the
    closure proof succeeds. *)
