(** Cardinality estimation.

    A classic System-R-style estimator: per-column distinct counts and
    equi-width histograms from base-table statistics, independence between
    predicates, and containment for equi-joins.  Good enough to reproduce
    the direction of the Section 7 trade-off (it does not need to be
    accurate, only monotone in the right places). *)

open Eager_schema
open Eager_storage
open Eager_algebra

type profile = {
  card : float;  (** estimated output rows *)
  ndv : float Colref.Map.t;  (** per-column distinct-value estimates *)
  nullfrac : float Colref.Map.t;  (** per-column NULL fraction estimates *)
  hist : Stats.histogram Colref.Map.t;
      (** equi-width histograms for numeric base-table columns, propagated
          through filter/join/projection operators *)
}

val profile : Database.t -> Plan.t -> profile
val card : Database.t -> Plan.t -> float

val selectivity :
  ndv:(Colref.t -> float) ->
  ?nullfrac:(Colref.t -> float) ->
  ?hist:(Colref.t -> Stats.histogram option) ->
  Eager_expr.Expr.t ->
  float
(** Selectivity of a predicate given column distinct counts: [(1-nf)/ndv]
    for equality with a constant, [(1-nf₁)(1-nf₂)/max ndv] for column
    equality (NULL keys never join, paper Section 4.2), 1/3 for ranges
    unless a histogram is available — in which case the bucket fraction
    below/above the constant is used — product over conjuncts,
    inclusion-exclusion over disjuncts.  [nullfrac] defaults to 0 and
    [hist] to absent. *)
