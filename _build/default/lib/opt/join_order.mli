(** System-R-style join-order enumeration for the multi-table sides of the
    canonical query (e.g. Example 3's R1 = PrinterAuth × Printer).

    [Plans.join_tree] is a greedy left-deep builder in FROM-clause order;
    this module enumerates {i all} left-deep orders with dynamic
    programming over relation subsets and keeps the cheapest under
    {!Cost.cost}.  Exhaustive up to the subset budget (default 12
    relations, i.e. 4096 subsets); beyond it the greedy tree is returned.

    Single-table predicates are pushed onto the scans and every
    cross-table conjunct is applied at the first join where both sides
    are in scope — exactly the invariant [Plans.join_tree] maintains, so
    the two builders always produce semantically equal plans. *)

open Eager_core
open Eager_storage
open Eager_algebra

val best_tree :
  ?max_relations:int ->
  Database.t ->
  Canonical.source list ->
  Eager_expr.Expr.t list ->
  Plan.t
(** Cheapest left-deep join tree over the sources applying the conjuncts.
    Raises [Failure] on an empty source list. *)
