(** The cost-based decision: validity by TestFD, desirability by cost.

    The paper establishes {i when the transformation is valid} (Theorem 1/2,
    TestFD) and observes that validity does not imply profitability
    (Section 7, Figure 8).  The planner combines both: it proposes E2 only
    when TestFD says YES, and picks whichever of E1/E2 the cost model
    prefers. *)

open Eager_core
open Eager_storage
open Eager_algebra

type kind = Lazy_group | Eager_group

type decision = {
  verdict : Testfd.verdict;
  plan_lazy : Plan.t;
  cost_lazy : float;
  plan_eager : Plan.t option;
  cost_eager : float option;
  chosen : Plan.t;
  chosen_kind : kind;
  expanded_atoms : int;
      (** predicate-expansion bindings derived before planning (paper
          Example 3's closing optimization); 0 when [expand:false] *)
}

val decide : ?strict:bool -> ?expand:bool -> Database.t -> Canonical.t -> decision
(** [expand] (default true) applies {!Eager_core.Expand.query} first, so
    derived constant bindings shrink the eager plan's grouping input. *)

val explain : Database.t -> decision -> string
val kind_to_string : kind -> string
