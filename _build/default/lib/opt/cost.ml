open Eager_algebra
open Eager_exec

type breakdown = {
  total : float;
  node_label : string;
  node_cost : float;
  out_card : float;
  inputs : breakdown list;
}

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

let breakdown ?(sort_group = false) db plan =
  let rec go (p : Plan.t) : breakdown =
    let prof = Estimate.profile db p in
    let label = Plan.label p in
    match p with
    | Plan.Scan _ ->
        { total = prof.Estimate.card; node_label = label;
          node_cost = prof.Estimate.card; out_card = prof.Estimate.card;
          inputs = [] }
    | Plan.Select { input; _ } ->
        let bin = go input in
        let c = bin.out_card in
        { total = bin.total +. c; node_label = label; node_cost = c;
          out_card = prof.Estimate.card; inputs = [ bin ] }
    | Plan.Project { dedup; input; _ } ->
        let bin = go input in
        let c = bin.out_card *. if dedup then 2.0 else 1.0 in
        { total = bin.total +. c; node_label = label; node_cost = c;
          out_card = prof.Estimate.card; inputs = [ bin ] }
    | Plan.Product (a, b) ->
        let ba = go a and bb = go b in
        let c = ba.out_card *. bb.out_card in
        { total = ba.total +. bb.total +. c; node_label = label;
          node_cost = c; out_card = prof.Estimate.card; inputs = [ ba; bb ] }
    | Plan.Join { pred; left; right } ->
        let ba = go left and bb = go right in
        let lsch = Plan.schema_of left and rsch = Plan.schema_of right in
        let keys, _ = Exec.split_equijoin lsch rsch pred in
        let c =
          if keys = [] then ba.out_card *. bb.out_card
          else ba.out_card +. bb.out_card +. prof.Estimate.card
        in
        { total = ba.total +. bb.total +. c; node_label = label;
          node_cost = c; out_card = prof.Estimate.card; inputs = [ ba; bb ] }
    | Plan.Group { input; _ } ->
        let bin = go input in
        let n = bin.out_card in
        let c = if sort_group then n *. log2 n else n in
        { total = bin.total +. c; node_label = label; node_cost = c;
          out_card = prof.Estimate.card; inputs = [ bin ] }
    | Plan.Map { input; _ } ->
        let bin = go input in
        let c = bin.out_card in
        { total = bin.total +. c; node_label = label; node_cost = c;
          out_card = prof.Estimate.card; inputs = [ bin ] }
    | Plan.Sort { input; _ } ->
        let bin = go input in
        let n = bin.out_card in
        let c = n *. log2 n in
        { total = bin.total +. c; node_label = label; node_cost = c;
          out_card = prof.Estimate.card; inputs = [ bin ] }
  in
  go plan

let cost ?sort_group db plan = (breakdown ?sort_group db plan).total

let pp_breakdown ppf b =
  let rec go indent b =
    Format.fprintf ppf "%s%s   -- cost %.0f, est. %.0f rows@," indent
      b.node_label b.node_cost b.out_card;
    List.iter (go (indent ^ "  ")) b.inputs
  in
  Format.fprintf ppf "@[<v>";
  go "" b;
  Format.fprintf ppf "total: %.0f@]" b.total
