lib/opt/unique_group.ml: Agg Catalog Closure Colref Database Eager_algebra Eager_catalog Eager_expr Eager_fd Eager_schema Eager_storage Expr Fd From_catalog List Mine Plan Schema
