lib/opt/unique_group.mli: Database Eager_algebra Eager_schema Eager_storage Plan
