lib/opt/join_order.mli: Canonical Database Eager_algebra Eager_core Eager_expr Eager_storage Plan
