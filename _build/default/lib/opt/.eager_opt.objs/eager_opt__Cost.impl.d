lib/opt/cost.ml: Eager_algebra Eager_exec Estimate Exec Float Format List Plan
