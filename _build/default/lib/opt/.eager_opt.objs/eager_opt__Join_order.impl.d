lib/opt/join_order.ml: Array Canonical Catalog Colref Cost Database Eager_algebra Eager_catalog Eager_core Eager_expr Eager_schema Eager_storage Expr Hashtbl List Plan Plans Printf Schema Table_def
