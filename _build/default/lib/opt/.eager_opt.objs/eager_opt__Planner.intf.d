lib/opt/planner.mli: Canonical Database Eager_algebra Eager_core Eager_storage Plan Testfd
