lib/opt/planner.ml: Buffer Canonical Cost Eager_algebra Eager_core Expand Format Join_order List Plan Plans Printf Testfd
