lib/opt/cost.mli: Database Eager_algebra Eager_storage Format Plan
