lib/opt/estimate.ml: Agg Array Colref Database Eager_algebra Eager_expr Eager_schema Eager_storage Eager_value Expr Float List Option Plan Schema Stats
