lib/opt/estimate.mli: Colref Database Eager_algebra Eager_expr Eager_schema Eager_storage Plan Stats
