open Eager_core
open Eager_algebra

type kind = Lazy_group | Eager_group

type decision = {
  verdict : Testfd.verdict;
  plan_lazy : Plan.t;
  cost_lazy : float;
  plan_eager : Plan.t option;
  cost_eager : float option;
  chosen : Plan.t;
  chosen_kind : kind;
  expanded_atoms : int;
}

let kind_to_string = function
  | Lazy_group -> "group after join (E1)"
  | Eager_group -> "group before join (E2)"

let decide ?strict ?(expand = true) db q =
  let expanded_atoms = if expand then Expand.derived_count q else 0 in
  let q = if expand then Expand.query q else q in
  let verdict = Testfd.test ?strict db q in
  (* multi-table sides go through the DP join-order enumerator *)
  let side sources conjuncts fallback =
    if List.length sources >= 3 then Join_order.best_tree db sources conjuncts
    else fallback
  in
  let side1 = side q.Canonical.r1 q.Canonical.c1 (Plans.side1 db q) in
  let side2 = side q.Canonical.r2 q.Canonical.c2 (Plans.side2 db q) in
  let plan_lazy = Plans.e1_with q ~side1 ~side2 in
  let cost_lazy = Cost.cost db plan_lazy in
  match verdict with
  | Testfd.No _ ->
      {
        verdict;
        plan_lazy;
        cost_lazy;
        plan_eager = None;
        cost_eager = None;
        chosen = plan_lazy;
        chosen_kind = Lazy_group;
        expanded_atoms;
      }
  | Testfd.Yes ->
      let plan_eager = Plans.e2_with q ~side1 ~side2 in
      let cost_eager = Cost.cost db plan_eager in
      let chosen, chosen_kind =
        if cost_eager < cost_lazy then (plan_eager, Eager_group)
        else (plan_lazy, Lazy_group)
      in
      {
        verdict;
        plan_lazy;
        cost_lazy;
        plan_eager = Some plan_eager;
        cost_eager = Some cost_eager;
        chosen;
        chosen_kind;
        expanded_atoms;
      }

let explain db d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "TestFD: %s\n" (Testfd.verdict_to_string d.verdict));
  if d.expanded_atoms > 0 then
    Buffer.add_string buf
      (Printf.sprintf "predicate expansion: %d derived binding(s)\n"
         d.expanded_atoms);
  Buffer.add_string buf
    (Format.asprintf "E1 (lazy):@.%a@." Cost.pp_breakdown
       (Cost.breakdown db d.plan_lazy));
  (match d.plan_eager with
  | Some p ->
      Buffer.add_string buf
        (Format.asprintf "E2 (eager):@.%a@." Cost.pp_breakdown
           (Cost.breakdown db p))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "chosen: %s\n" (kind_to_string d.chosen_kind));
  Buffer.contents buf
