open Eager_schema
open Eager_expr

type column_def = { cname : string; ctype : Ctype.t; domain : string option }
type t = { tname : string; columns : column_def list; constraints : Constr.t list }

let column_names t = List.map (fun c -> c.cname) t.columns
let has_column t name = List.exists (fun c -> String.equal c.cname name) t.columns

let make tname columns constraints =
  let t = { tname; columns; constraints } in
  let check_col c =
    if not (has_column t c) then
      failwith (Printf.sprintf "table %s: constraint references unknown column %s" tname c)
  in
  List.iter
    (function
      | Constr.Primary_key k | Constr.Unique k -> List.iter check_col k
      | Constr.Not_null c -> check_col c
      | Constr.Check e ->
          Colref.Set.iter (fun cr -> check_col cr.Colref.name) (Expr.columns e)
      | Constr.Foreign_key { cols; _ } -> List.iter check_col cols)
    constraints;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.cname then
        failwith (Printf.sprintf "table %s: duplicate column %s" tname c.cname)
      else Hashtbl.add seen c.cname ())
    columns;
  t

let schema ?rel t =
  let rel = Option.value rel ~default:t.tname in
  Schema.make
    (List.map (fun c -> (Colref.make rel c.cname, c.ctype)) t.columns)

let keys t = Constr.keys t.constraints
let not_null t = Constr.not_null_cols t.constraints

let key_colrefs ~rel t =
  List.map (fun k -> List.map (Colref.make rel) k) (keys t)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>CREATE TABLE %s (@,%a%a)@]" t.tname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
       (fun ppf c ->
         Format.fprintf ppf "%s %a%s" c.cname Ctype.pp c.ctype
           (match c.domain with Some d -> " /* domain " ^ d ^ " */" | None -> "")))
    t.columns
    (fun ppf cs ->
      List.iter (fun c -> Format.fprintf ppf ",@,%a" Constr.pp c) cs)
    t.constraints
