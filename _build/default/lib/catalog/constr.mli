(** SQL2 integrity constraints (paper Section 6.1, Figure 5).

    Column names inside a constraint are unqualified — they refer to columns
    of the owning table.  CHECK expressions use [Colref]s with an empty
    range variable; {!requalify} rebinds them to a query's range variable. *)

open Eager_expr

type t =
  | Primary_key of string list
  | Unique of string list  (** candidate key; unlike a primary key it may contain NULL *)
  | Not_null of string
  | Check of Expr.t
  | Foreign_key of { cols : string list; ref_table : string; ref_cols : string list }

val requalify : string -> Expr.t -> Expr.t
(** Re-qualify every column reference with the given range variable. *)

val keys : t list -> string list list
(** All candidate keys declared by the constraints (primary first). *)

val not_null_cols : t list -> string list
(** Columns that cannot be NULL: explicit NOT NULL plus primary-key columns
    (SQL2 forbids NULL in a primary key). *)

val checks : t list -> Expr.t list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
