open Eager_schema
open Eager_expr

type t =
  | Primary_key of string list
  | Unique of string list
  | Not_null of string
  | Check of Expr.t
  | Foreign_key of { cols : string list; ref_table : string; ref_cols : string list }

let rec requalify rel (e : Expr.t) : Expr.t =
  match e with
  | Expr.Col c -> Expr.Col (Colref.make rel c.Colref.name)
  | Expr.Const _ | Expr.Param _ -> e
  | Expr.Neg a -> Expr.Neg (requalify rel a)
  | Expr.Not a -> Expr.Not (requalify rel a)
  | Expr.Is_null a -> Expr.Is_null (requalify rel a)
  | Expr.Is_not_null a -> Expr.Is_not_null (requalify rel a)
  | Expr.Like { negated; arg; pattern } ->
      Expr.Like { negated; arg = requalify rel arg; pattern }
  | Expr.Case { branches; else_ } ->
      Expr.Case
        {
          branches = List.map (fun (c, v) -> ((requalify rel) c, (requalify rel) v)) branches;
          else_ = Option.map (requalify rel) else_;
        }
  | Expr.Arith (op, a, b) -> Expr.Arith (op, requalify rel a, requalify rel b)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, requalify rel a, requalify rel b)
  | Expr.And (a, b) -> Expr.And (requalify rel a, requalify rel b)
  | Expr.Or (a, b) -> Expr.Or (requalify rel a, requalify rel b)

let keys cs =
  let primary = List.filter_map (function Primary_key k -> Some k | _ -> None) cs in
  let unique = List.filter_map (function Unique k -> Some k | _ -> None) cs in
  primary @ unique

let not_null_cols cs =
  List.concat_map
    (function Not_null c -> [ c ] | Primary_key k -> k | _ -> [])
    cs
  |> List.sort_uniq String.compare

let checks cs = List.filter_map (function Check e -> Some e | _ -> None) cs

let to_string = function
  | Primary_key k -> "PRIMARY KEY (" ^ String.concat ", " k ^ ")"
  | Unique k -> "UNIQUE (" ^ String.concat ", " k ^ ")"
  | Not_null c -> c ^ " NOT NULL"
  | Check e -> "CHECK (" ^ Expr.to_string e ^ ")"
  | Foreign_key { cols; ref_table; ref_cols } ->
      Printf.sprintf "FOREIGN KEY (%s) REFERENCES %s (%s)"
        (String.concat ", " cols) ref_table
        (String.concat ", " ref_cols)

let pp ppf c = Format.pp_print_string ppf (to_string c)
