lib/catalog/constr.mli: Eager_expr Expr Format
