lib/catalog/constr.ml: Colref Eager_expr Eager_schema Expr Format List Option Printf String
