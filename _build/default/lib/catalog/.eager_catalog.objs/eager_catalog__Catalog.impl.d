lib/catalog/catalog.ml: Colref Constr Ctype Eager_expr Eager_schema Expr List Map Option Printf String Table_def
