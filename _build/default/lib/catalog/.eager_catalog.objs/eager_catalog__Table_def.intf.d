lib/catalog/table_def.mli: Colref Constr Ctype Eager_schema Format Schema
