lib/catalog/catalog.mli: Ctype Eager_expr Eager_schema Expr Table_def
