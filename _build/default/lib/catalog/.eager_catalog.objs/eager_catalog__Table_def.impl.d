lib/catalog/table_def.ml: Colref Constr Ctype Eager_expr Eager_schema Expr Format Hashtbl List Option Printf Schema String
