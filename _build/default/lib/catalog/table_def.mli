(** Base-table definitions. *)

open Eager_schema

type column_def = {
  cname : string;
  ctype : Ctype.t;
  domain : string option;  (** name of the domain the column was declared with *)
}

type t = { tname : string; columns : column_def list; constraints : Constr.t list }

val make : string -> column_def list -> Constr.t list -> t
(** Validates that constraint columns exist.  Raises [Failure] otherwise. *)

val column_names : t -> string list
val has_column : t -> string -> bool
val schema : ?rel:string -> t -> Schema.t
(** Schema with columns qualified by [rel] (default: the table name). *)

val keys : t -> string list list
val not_null : t -> string list

val key_colrefs : rel:string -> t -> Colref.t list list
val pp : Format.formatter -> t -> unit
