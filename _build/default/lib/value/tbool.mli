(** Three-valued logic of SQL2 (paper Figure 2).

    A search condition evaluates to [True], [False] or [Unknown]; [Unknown]
    arises whenever a comparison touches NULL.  The two interpretation
    operators of Figure 3 map the three values back to booleans: [holds]
    (written ⌊P⌋ in the paper) treats unknown as false — the WHERE-clause
    rule — while [possible] (⌈P⌉) treats unknown as true. *)

type t = True | False | Unknown

val of_bool : bool -> t

val and_ : t -> t -> t
(** Conjunction per the SQL2 truth table: false dominates, otherwise unknown
    is contagious. *)

val or_ : t -> t -> t
(** Disjunction per the SQL2 truth table: true dominates. *)

val not_ : t -> t
(** Negation; [not_ Unknown = Unknown]. *)

val holds : t -> bool
(** ⌊P⌋: [true] iff the condition is [True].  WHERE-clause semantics. *)

val possible : t -> bool
(** ⌈P⌉: [true] unless the condition is [False]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
