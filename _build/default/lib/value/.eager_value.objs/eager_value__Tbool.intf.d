lib/value/tbool.mli: Format
