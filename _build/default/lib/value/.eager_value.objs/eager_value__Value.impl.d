lib/value/value.ml: Float Format Hashtbl Tbool
