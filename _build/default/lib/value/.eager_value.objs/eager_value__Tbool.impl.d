lib/value/tbool.ml: Format
