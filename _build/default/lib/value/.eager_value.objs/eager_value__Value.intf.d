lib/value/value.mli: Format Tbool
