type t = True | False | Unknown

let of_bool b = if b then True else False

let and_ a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or_ a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let not_ = function True -> False | False -> True | Unknown -> Unknown

let holds = function True -> true | False | Unknown -> false
let possible = function False -> false | True | Unknown -> true

let equal (a : t) (b : t) = a = b

let to_string = function
  | True -> "true"
  | False -> "false"
  | Unknown -> "unknown"

let pp ppf t = Format.pp_print_string ppf (to_string t)
