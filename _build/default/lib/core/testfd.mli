(** Algorithm TestFD (paper Section 6.3): a fast, sufficient test deciding
    whether FD1 and FD2 are guaranteed to hold in the join result — i.e.
    whether group-by may be pushed past the join.

    The algorithm uses only primary/candidate keys and equality conditions
    from the WHERE clause plus the column/domain constraints [T1]/[T2]:

    1. convert [C1 ∧ C0 ∧ C2 ∧ T1 ∧ T2] to CNF;
    2. delete every clause containing an atom that is not of Type 1
       ([v = c]) or Type 2 ([v1 = v2]);
    3. convert the rest to DNF (bounded — see [dnf_cap]);
    4. for every disjunct: seed a set with [GA1 ∪ GA2] plus the columns
       bound to constants, close it under column equalities and key
       dependencies, and require (d) some candidate key of every R2-side
       table and (h) all of [GA1+] to be inside the closure.

    A [Yes] answer is sound (Theorem 4); [No] answers may be false
    negatives — the exact conditions are undecidable to test in general.

    Two deliberate refinements over the paper's listing, both
    answer-preserving and noted in DESIGN.md:
    - steps 4(a–c) and 4(e–g) build the same closure, so we compute it once
      per disjunct and check both goals against it;
    - when step 2 deletes {i every} clause the paper returns NO outright;
      with [strict = false] (the default) we instead run step 4 on a single
      empty disjunct, which still exploits the key dependencies (e.g. GA2
      containing a key of R2 with no WHERE clause at all).  [strict = true]
      reproduces the paper's behaviour verbatim. *)

open Eager_storage

type verdict = Yes | No of string

type trace = {
  clauses_kept : int;
  clauses_dropped : int;
  disjuncts : int;
  closures : (string list * bool * bool) list;
      (** per disjunct: closure columns, key-of-R2 check, GA1+ check *)
}

val test :
  ?strict:bool -> ?dnf_cap:int -> Database.t -> Canonical.t -> verdict

val test_traced :
  ?strict:bool ->
  ?dnf_cap:int ->
  Database.t ->
  Canonical.t ->
  verdict * trace
(** Same, returning the intermediate state — used to print the Example 3
    walk-through and Figure 7-style traces. *)

val verdict_to_string : verdict -> string
