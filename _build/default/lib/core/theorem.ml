open Eager_value
open Eager_schema
open Eager_expr
open Eager_fd
open Eager_exec

type check = { fd1 : bool; fd2 : bool }

let join_with_provenance ?(params = Expr.no_params) db (q : Canonical.t) =
  let options = { Exec.default_options with params } in
  let rows1 = Exec.run_rows ~options db (Plans.side1 db q) in
  let rows2 = Exec.run_rows ~options db (Plans.side2 db q) in
  let joint = Schema.concat q.Canonical.schema1 q.Canonical.schema2 in
  let c0 = Expr.compile_pred ~params joint (Expr.conj q.Canonical.c0) in
  let out = ref [] in
  List.iter
    (fun r1 ->
      List.iteri
        (fun i2 r2 ->
          let row = Row.concat r1 r2 in
          if Tbool.holds (c0 row) then out := (row, i2) :: !out)
        rows2)
    rows1;
  List.rev !out

let joint_schema (q : Canonical.t) =
  Schema.concat q.Canonical.schema1 q.Canonical.schema2

let fd1_of ?params db q tagged =
  ignore params;
  ignore db;
  let schema = joint_schema q in
  Instance_check.fd_holds ~schema
    ~lhs:(q.Canonical.ga1 @ q.Canonical.ga2)
    ~rhs:(Canonical.ga1_plus q)
    (List.map fst tagged)

let fd2_of ?params db q tagged =
  ignore params;
  ignore db;
  let schema = joint_schema q in
  let lhs_idx =
    Schema.indices schema (Canonical.ga1_plus q @ q.Canonical.ga2)
  in
  Instance_check.determines
    ~key_of:(fun (row, _) -> Row.key_on lhs_idx row)
    ~value_of:(fun (_, i2) -> [ Value.Int i2 ])
    tagged

let check ?params db q =
  let tagged = join_with_provenance ?params db q in
  { fd1 = fd1_of ?params db q tagged; fd2 = fd2_of ?params db q tagged }

let fd1_holds ?params db q =
  fd1_of ?params db q (join_with_provenance ?params db q)

let fd2_holds ?params db q =
  fd2_of ?params db q (join_with_provenance ?params db q)

let equivalent ?(params = Expr.no_params) db q =
  let options = { Exec.default_options with params } in
  let rows_e1 = Exec.run_rows ~options db (Plans.e1 db q) in
  let rows_e2 = Exec.run_rows ~options db (Plans.e2 db q) in
  Exec.multiset_equal rows_e1 rows_e2
