open Eager_storage
open Eager_algebra

type direction = Materialize_view | Flatten

let eligible ?strict db q =
  match Testfd.test ?strict db q with
  | Testfd.Yes -> Ok ()
  | Testfd.No reason -> Error reason

let view_plan db q = Plans.e2_r1_prime db q

let plan_of db q = function
  | Materialize_view -> Plans.e2 db q
  | Flatten -> Plans.e1 db q

let direction_to_string = function
  | Materialize_view -> "materialize view, then join (E2)"
  | Flatten -> "join base tables, then group (E1)"

let _ = (fun (db : Database.t) -> db)
let _ = (fun (p : Plan.t) -> p)
