(** Instance-level verification of the Main Theorem (Section 5).

    These functions materialise the join [σ(C1∧C0∧C2)(r1 × r2)] with
    provenance — which R2-side row produced each joined row — and check the
    two dependencies directly against Definition 2:

    - [FD1 : (GA1, GA2) → GA1+]
    - [FD2 : (GA1+, GA2) → RowID(R2)]

    They are exponential in nothing but linear in the join size, yet the
    join size itself can be huge — this is the "expensive or even
    impossible" exact test that motivates TestFD.  We use it as ground
    truth: by the Main Theorem, [fd1_holds && fd2_holds] on given instances
    is implied by plan equivalence on those instances, and (together over
    all instances) implies it. *)

open Eager_schema
open Eager_expr
open Eager_storage

type check = { fd1 : bool; fd2 : bool }

val join_with_provenance :
  ?params:Expr.env -> Database.t -> Canonical.t -> (Row.t * int) list
(** Rows of the selected join, each tagged with the index (RowID) of the
    R2-side row that produced it.  The row layout is [schema1 ++ schema2]. *)

val check : ?params:Expr.env -> Database.t -> Canonical.t -> check
val fd1_holds : ?params:Expr.env -> Database.t -> Canonical.t -> bool
val fd2_holds : ?params:Expr.env -> Database.t -> Canonical.t -> bool

val equivalent : ?params:Expr.env -> Database.t -> Canonical.t -> bool
(** Execute both E1 and E2 on the instance and compare results as multisets
    under [=ⁿ]. *)
