(** The class of queries the paper considers (Section 3).

    A query is canonicalised into two sides: [R1] — the tables that carry
    aggregation columns — and [R2] — the tables that do not.  Each side is
    formally a single table (the Cartesian product of its members).  The
    WHERE clause splits into [C1] (columns of R1 only), [C2] (R2 only) and
    [C0] (spanning both); grouping columns split into [GA1]/[GA2], and the
    SELECT list consists of selection columns [SGA1 ⊆ GA1], [SGA2 ⊆ GA2]
    plus aggregation expressions [F(AA)] over R1 columns.

    [GA1+]/[GA2+] extend the grouping columns with each side's join columns:
    [GA1+ = GA1 ∪ (cols(C0) ∩ R1)]. *)

open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra

type source = { table : string; rel : string }

type t = private {
  r1 : source list;
  r2 : source list;
  schema1 : Schema.t;  (** concatenated schemas of the R1-side sources *)
  schema2 : Schema.t;
  c1 : Expr.t list;
  c0 : Expr.t list;
  c2 : Expr.t list;
  ga1 : Colref.t list;
  ga2 : Colref.t list;
  sga1 : Colref.t list;
  sga2 : Colref.t list;
  aggs : Agg.t list;
  distinct : bool;
  having : Expr.t option;
      (** Extension beyond the paper (its stated future work): a filter
          over grouping columns and aggregate output names, applied after
          aggregation.  When FD1/FD2 hold, E1's groups and E2's joined
          rows are in value-preserving bijection on exactly those columns,
          so the same filter applied above the Group (E1) and above the
          Join (E2) preserves the equivalence — see [Plans] and the
          HAVING cases of the equivalence property suite. *)
}

type input = {
  sources : source list;
  where : Expr.t;
  group_by : Colref.t list;
  select_cols : Colref.t list;
  select_aggs : Agg.t list;
  select_distinct : bool;
  select_having : Expr.t option;
      (** may reference grouping columns and aggregate output names *)
  r1_hint : string list;
      (** range variables to force onto the R1 side — needed when the
          aggregates reference no columns at all (pure COUNT-star queries
          leave the partition ambiguous) *)
}

val of_input : Database.t -> input -> (t, string) result
(** Canonicalise and validate: resolves sources against the catalog,
    partitions the FROM list, splits the WHERE clause, and checks the
    class restrictions (selection columns ⊆ grouping columns, aggregation
    columns confined to R1, both sides non-empty, GA1 ∪ GA2 non-empty). *)

val of_input_exn : Database.t -> input -> t

val add_predicates : t -> side1:Expr.t list -> side2:Expr.t list -> t
(** Append extra single-side conjuncts to [c1]/[c2].  Raises [Failure] if a
    predicate touches columns outside its side.  Used by [Expand]; only
    sound when the added predicates cannot change the query's result. *)

val ga1_plus : t -> Colref.t list
val ga2_plus : t -> Colref.t list
val agg_names : t -> Colref.t list
val side1_cols : t -> Colref.Set.t
val side2_cols : t -> Colref.Set.t

val pp : Format.formatter -> t -> unit
(** Render back as SQL-ish text, for EXPLAIN output. *)
