(** Facade for the group-by pushdown machinery.

    Typical use:
    {[
      let q = Eager.canonicalize_exn db input in
      match Eager.transform db q with
      | Ok eager_plan -> (* run it, or cost it against Eager.lazy_plan *)
      | Error reason  -> (* fall back to the standard plan *)
    ]} *)

open Eager_storage
open Eager_algebra

val canonicalize : Database.t -> Canonical.input -> (Canonical.t, string) result
val canonicalize_exn : Database.t -> Canonical.input -> Canonical.t

val validate : ?strict:bool -> Database.t -> Canonical.t -> Testfd.verdict
(** Run TestFD: may the group-by be performed before the join? *)

val lazy_plan : Database.t -> Canonical.t -> Plan.t
(** E1 — join first, then group (the standard plan). *)

val transform : ?strict:bool -> Database.t -> Canonical.t -> (Plan.t, string) result
(** E2 — group before join — when the transformation is provably valid. *)

val explain : ?strict:bool -> Database.t -> Canonical.t -> string
(** Human-readable report: canonical query, TestFD verdict, and both plans. *)
