open Eager_algebra

let canonicalize = Canonical.of_input
let canonicalize_exn = Canonical.of_input_exn
let validate ?strict db q = Testfd.test ?strict db q
let lazy_plan db q = Plans.e1 db q

let transform ?strict db q =
  match Testfd.test ?strict db q with
  | Testfd.Yes -> Ok (Plans.e2 db q)
  | Testfd.No reason -> Error reason

let explain ?strict db q =
  let verdict = Testfd.test ?strict db q in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Format.asprintf "%a@." Canonical.pp q);
  Buffer.add_string buf
    (Printf.sprintf "TestFD: %s\n" (Testfd.verdict_to_string verdict));
  Buffer.add_string buf "-- Plan E1 (group after join):\n";
  Buffer.add_string buf (Plan.to_string (Plans.e1 db q));
  (match verdict with
  | Testfd.Yes ->
      Buffer.add_string buf "\n-- Plan E2 (group before join):\n";
      Buffer.add_string buf (Plan.to_string (Plans.e2 db q))
  | Testfd.No _ -> ());
  Buffer.contents buf
