(** Column substitution (paper Section 9, "Concluding remarks").

    A query may fail to canonicalise or to pass TestFD as written, yet an
    equivalent query — obtained by replacing a column with one it is
    equated to in the WHERE clause — may succeed.  Within the join result,
    an equality conjunct [a = b] that {i holds} forces both columns
    non-NULL and equal, so substituting [b] for [a] inside aggregation
    operands, grouping columns or selection columns preserves the query's
    value while possibly changing the R1/R2 partition (aggregation columns
    determine which side a table lands on) or the derivable dependencies.

    Substitution never touches the WHERE clause itself (that would lose
    the equality that justifies the rewrite). *)

open Eager_storage

val variants : Canonical.input -> Canonical.input list
(** The original input first, followed by the inputs obtained by applying
    each single equality substitution to the SELECT and GROUP BY clauses
    (both directions), then pairs of substitutions.  Duplicates are
    pruned; the list is finite and small. *)

val find_transformable :
  ?strict:bool ->
  Database.t ->
  Canonical.input ->
  (Canonical.t * Canonical.input, string) result
(** Try each variant in order: the first one that canonicalises {i and}
    passes TestFD is returned together with the rewritten input.
    [Error] carries the reason the original query failed. *)
