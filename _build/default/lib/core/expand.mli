(** Predicate expansion (paper Example 3, closing remark).

    "It is wasteful to perform the grouping for all users in PrinterAuth
    because we are only interested in those on machine 'dragon'.  Hence, we
    can add the predicate A.Machine = 'dragon' to the query computing R1'.
    This type of optimization (predicate expansion) is routinely used but
    outside the scope of this paper."

    Implemented here: equality conjuncts of [C1 ∧ C0 ∧ C2] are grouped
    into classes (union-find); when any member of a class is bound to a
    constant or host variable, every other member inherits the binding, and
    the new atom is added to the side ([C1] or [C2]) its column lives on.

    Soundness: a surviving join row satisfies every equality (3VL-true), so
    all class members are non-NULL and equal; a row eliminated by a derived
    binding could never have joined.  The payoff is that E2's eager
    grouping no longer processes rows the join would discard — exactly the
    paper's point (`bench --report ex3` shows the grouped input shrink). *)

val query : Canonical.t -> Canonical.t
(** Add every derivable [col = const] binding to [c1]/[c2].  Idempotent;
    returns the input unchanged when nothing is derivable. *)

val derived_count : Canonical.t -> int
(** How many atoms {!query} would add (for reporting). *)
