open Eager_schema
open Eager_expr

(* union-find over column references *)
module Uf = struct
  type t = (Colref.t, Colref.t) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find uf c =
    match Hashtbl.find_opt uf c with
    | None -> c
    | Some p ->
        let root = find uf p in
        if not (Colref.equal root p) then Hashtbl.replace uf c root;
        root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if not (Colref.equal ra rb) then Hashtbl.replace uf ra rb
end

(* the constant (or host variable) a class is bound to *)
type binding = Const of Eager_value.Value.t | Param of string

let binding_expr col = function
  | Const v -> Expr.eq (Expr.Col col) (Expr.Const v)
  | Param p -> Expr.eq (Expr.Col col) (Expr.Param p)

let derive (q : Canonical.t) =
  let conjuncts = q.Canonical.c1 @ q.Canonical.c0 @ q.Canonical.c2 in
  let uf = Uf.create () in
  let bindings : (Colref.t, binding) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun atom ->
      match Expr.classify_atom atom with
      | Expr.Col_eq_col (a, b) -> Uf.union uf a b
      | Expr.Col_eq_const (c, v) -> Hashtbl.replace bindings c (Const v)
      | Expr.Col_eq_param (c, p) -> Hashtbl.replace bindings c (Param p)
      | Expr.Other_atom -> ())
    conjuncts;
  (* root -> binding *)
  let class_binding : (Colref.t, binding) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun c b -> Hashtbl.replace class_binding (Uf.find uf c) b)
    bindings;
  (* every column mentioned in any equality, bound through its class *)
  let members = Hashtbl.create 16 in
  List.iter
    (fun atom ->
      match Expr.classify_atom atom with
      | Expr.Col_eq_col (a, b) ->
          Hashtbl.replace members a ();
          Hashtbl.replace members b ()
      | _ -> ())
    conjuncts;
  let already_bound c = Hashtbl.mem bindings c in
  Hashtbl.fold
    (fun c () acc ->
      match Hashtbl.find_opt class_binding (Uf.find uf c) with
      | Some b when not (already_bound c) -> binding_expr c b :: acc
      | _ -> acc)
    members []

let split_by_side (q : Canonical.t) atoms =
  let side1 = Canonical.side1_cols q and side2 = Canonical.side2_cols q in
  List.partition
    (fun e ->
      let cols = Expr.columns e in
      if Colref.Set.subset cols side1 then true
      else if Colref.Set.subset cols side2 then false
      else assert false (* derived atoms are single-column *))
    atoms

let derived_count q = List.length (derive q)

let query (q : Canonical.t) =
  match derive q with
  | [] -> q
  | atoms ->
      let side1, side2 = split_by_side q atoms in
      Canonical.add_predicates q ~side1 ~side2
