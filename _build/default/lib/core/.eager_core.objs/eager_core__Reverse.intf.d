lib/core/reverse.mli: Canonical Database Eager_algebra Eager_storage Plan
