lib/core/reverse.ml: Database Eager_algebra Eager_storage Plan Plans Testfd
