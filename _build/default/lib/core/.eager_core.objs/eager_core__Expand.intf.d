lib/core/expand.mli: Canonical
