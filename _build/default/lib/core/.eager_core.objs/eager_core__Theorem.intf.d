lib/core/theorem.mli: Canonical Database Eager_expr Eager_schema Eager_storage Expr Row
