lib/core/substitute.mli: Canonical Database Eager_storage
