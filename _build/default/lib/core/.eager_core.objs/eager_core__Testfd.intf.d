lib/core/testfd.mli: Canonical Database Eager_storage
