lib/core/expand.ml: Canonical Colref Eager_expr Eager_schema Eager_value Expr Hashtbl List
