lib/core/testfd.ml: Canonical Catalog Closure Colref Database Eager_catalog Eager_expr Eager_fd Eager_schema Eager_storage Expr From_catalog List Mine Printf
