lib/core/canonical.ml: Agg Catalog Colref Database Eager_algebra Eager_catalog Eager_expr Eager_schema Eager_storage Expr Format Hashtbl List Printf Result Schema String Table_def
