lib/core/theorem.ml: Canonical Eager_exec Eager_expr Eager_fd Eager_schema Eager_value Exec Expr Instance_check List Plans Row Schema Tbool Value
