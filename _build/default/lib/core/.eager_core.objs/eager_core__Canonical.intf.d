lib/core/canonical.mli: Agg Colref Database Eager_algebra Eager_expr Eager_schema Eager_storage Expr Format Schema
