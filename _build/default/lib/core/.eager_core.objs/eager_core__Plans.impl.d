lib/core/plans.ml: Canonical Catalog Colref Database Eager_algebra Eager_catalog Eager_expr Eager_schema Eager_storage Expr List Plan Printf Schema Table_def
