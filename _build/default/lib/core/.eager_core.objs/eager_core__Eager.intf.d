lib/core/eager.mli: Canonical Database Eager_algebra Eager_storage Plan Testfd
