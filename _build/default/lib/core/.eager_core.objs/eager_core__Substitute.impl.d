lib/core/substitute.ml: Agg Canonical Colref Eager_algebra Eager_expr Eager_schema Expr Hashtbl List Option Testfd
