lib/core/eager.ml: Buffer Canonical Eager_algebra Format Plan Plans Printf Testfd
