lib/core/plans.mli: Canonical Database Eager_algebra Eager_expr Eager_storage Plan
