(** Performing join before group-by (paper Section 8).

    When a FROM clause mentions an {i aggregated view} — a view defined by a
    grouped, aggregated query — the straightforward strategy materialises
    the view first and then joins: that is exactly plan E2, with the view
    body as [R1' = F[AA] G[GA1+] σC1 R1] ({!Plans.e2_r1_prime}).  The
    reverse transformation replaces it with the flattened plan E1 — join
    everything, then group — which wins when the join is selective enough
    to shrink the grouping input below the view's own cardinality.

    Both directions are governed by the same Main-Theorem conditions, so
    eligibility is again decided by {!Testfd}.  The caller expresses the
    query in flattened canonical form (Example 5 shows the rewrite); this
    module names the two strategies and exposes the view sub-plan. *)

open Eager_storage
open Eager_algebra

type direction =
  | Materialize_view  (** evaluate the view, then join: plan E2 *)
  | Flatten  (** join base tables, then group: plan E1 *)

val eligible : ?strict:bool -> Database.t -> Canonical.t -> (unit, string) result
(** Can the view be flattened (E2 → E1)?  [Error reason] when TestFD cannot
    establish FD1/FD2 for the flattened query. *)

val view_plan : Database.t -> Canonical.t -> Plan.t
(** The aggregated view body that the straightforward strategy would
    materialise. *)

val plan_of : Database.t -> Canonical.t -> direction -> Plan.t
val direction_to_string : direction -> string
