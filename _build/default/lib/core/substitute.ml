open Eager_schema
open Eager_expr
open Eager_algebra

(* equality pairs available for substitution, from the WHERE conjuncts *)
let equalities (input : Canonical.input) =
  Expr.conjuncts input.Canonical.where
  |> List.filter_map (fun atom ->
         match Expr.classify_atom atom with
         | Expr.Col_eq_col (a, b) -> Some (a, b)
         | _ -> None)

let subst_colref (from_c, to_c) c = if Colref.equal c from_c then to_c else c

let rec subst_expr sub (e : Expr.t) : Expr.t =
  match e with
  | Expr.Col c -> Expr.Col (subst_colref sub c)
  | Expr.Const _ | Expr.Param _ -> e
  | Expr.Neg a -> Expr.Neg (subst_expr sub a)
  | Expr.Not a -> Expr.Not (subst_expr sub a)
  | Expr.Is_null a -> Expr.Is_null (subst_expr sub a)
  | Expr.Is_not_null a -> Expr.Is_not_null (subst_expr sub a)
  | Expr.Like { negated; arg; pattern } ->
      Expr.Like { negated; arg = subst_expr sub arg; pattern }
  | Expr.Case { branches; else_ } ->
      Expr.Case
        {
          branches = List.map (fun (c, v) -> ((subst_expr sub) c, (subst_expr sub) v)) branches;
          else_ = Option.map (subst_expr sub) else_;
        }
  | Expr.Arith (op, a, b) -> Expr.Arith (op, subst_expr sub a, subst_expr sub b)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, subst_expr sub a, subst_expr sub b)
  | Expr.And (a, b) -> Expr.And (subst_expr sub a, subst_expr sub b)
  | Expr.Or (a, b) -> Expr.Or (subst_expr sub a, subst_expr sub b)

let subst_func sub (f : Agg.func) : Agg.func =
  match f with
  | Agg.Count_star -> Agg.Count_star
  | Agg.Count e -> Agg.Count (subst_expr sub e)
  | Agg.Count_distinct e -> Agg.Count_distinct (subst_expr sub e)
  | Agg.Sum e -> Agg.Sum (subst_expr sub e)
  | Agg.Min e -> Agg.Min (subst_expr sub e)
  | Agg.Max e -> Agg.Max (subst_expr sub e)
  | Agg.Avg e -> Agg.Avg (subst_expr sub e)

let rec subst_calc sub (c : Agg.calc) : Agg.calc =
  match c with
  | Agg.Const _ -> c
  | Agg.Call f -> Agg.Call (subst_func sub f)
  | Agg.Arith (op, a, b) -> Agg.Arith (op, subst_calc sub a, subst_calc sub b)
  | Agg.Neg a -> Agg.Neg (subst_calc sub a)

let apply sub (input : Canonical.input) : Canonical.input =
  {
    input with
    Canonical.group_by = List.map (subst_colref sub) input.Canonical.group_by;
    select_cols = List.map (subst_colref sub) input.Canonical.select_cols;
    select_aggs =
      List.map
        (fun (a : Agg.t) -> { a with Agg.calc = subst_calc sub a.Agg.calc })
        input.Canonical.select_aggs;
  }

(* a cheap structural fingerprint for de-duplication *)
let fingerprint (input : Canonical.input) =
  ( List.map Colref.to_string input.Canonical.group_by,
    List.map Colref.to_string input.Canonical.select_cols,
    List.map Agg.to_string input.Canonical.select_aggs )

let variants (input : Canonical.input) : Canonical.input list =
  let subs =
    List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) (equalities input)
  in
  let singles = List.map (fun s -> apply s input) subs in
  let doubles =
    List.concat_map (fun s1 -> List.map (fun s2 -> apply s2 (apply s1 input)) subs) subs
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      let fp = fingerprint v in
      if Hashtbl.mem seen fp then false
      else begin
        Hashtbl.add seen fp ();
        true
      end)
    ((input :: singles) @ doubles)

let find_transformable ?strict db (input : Canonical.input) =
  let original_failure = ref None in
  let remember msg =
    if !original_failure = None then original_failure := Some msg
  in
  let rec go = function
    | [] ->
        Error
          (Option.value !original_failure
             ~default:"no transformable variant found")
    | v :: rest -> (
        match Canonical.of_input db v with
        | Error msg ->
            remember msg;
            go rest
        | Ok q -> (
            match Testfd.test ?strict db q with
            | Testfd.Yes -> Ok (q, v)
            | Testfd.No msg ->
                remember msg;
                go rest))
  in
  go (variants input)
