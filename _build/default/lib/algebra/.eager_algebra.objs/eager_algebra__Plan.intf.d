lib/algebra/plan.mli: Agg Colref Eager_expr Eager_schema Expr Format Schema
