lib/algebra/agg.mli: Colref Ctype Eager_expr Eager_schema Eager_value Expr Format Schema Value
