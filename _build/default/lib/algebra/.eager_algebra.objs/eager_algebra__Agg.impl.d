lib/algebra/agg.ml: Colref Ctype Eager_expr Eager_schema Eager_value Expr Format Printf Value
