lib/algebra/plan.ml: Agg Colref Eager_expr Eager_schema Expr Format List Printf Schema String
