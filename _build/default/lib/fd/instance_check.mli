(** Instance-level functional-dependency verification.

    This is the "expensive or even impossible" exact test the paper contrasts
    with TestFD: materialise the join and check FD1/FD2 directly against
    Definition 2.  We use it as ground truth in tests and to demonstrate the
    necessity direction of the Main Theorem. *)

open Eager_schema

val fd_holds :
  schema:Schema.t -> lhs:Colref.t list -> rhs:Colref.t list -> Row.t list -> bool
(** Do all rows that agree ([=ⁿ]) on [lhs] also agree on [rhs]? *)

val determines :
  key_of:('a -> Eager_value.Value.t list) ->
  value_of:('a -> Eager_value.Value.t list) ->
  'a list ->
  bool
(** Generic form: items with equal [key_of] must have equal [value_of].
    Used for FD2, where the "value" is the provenance RowID of R2 rather
    than a schema column. *)
