(** Lifting catalog key declarations into functional dependencies.

    Only keys whose columns are all NOT NULL yield dependencies.  SQL2
    enforces UNIQUE with "NULL not equal to NULL" semantics, so a nullable
    UNIQUE key admits two rows that are [=ⁿ]-equivalent on the key (both
    all-NULL) yet differ elsewhere — the [=ⁿ] key dependency of paper
    Section 4.3 simply does not hold for such keys, and using them would
    make TestFD unsound (there is a concrete E1 ≠ E2 counterexample in
    test_core.ml).  Primary keys qualify automatically (SQL2 forbids NULL
    in them); UNIQUE keys qualify when their columns carry NOT NULL. *)

open Eager_catalog

val reliable_keys : Table_def.t -> string list list
(** Declared keys whose columns are all NOT NULL. *)

val key_fds : rel:string -> Table_def.t -> Fd.t list
(** One dependency per reliable key: key → all columns. *)

val key_sets : rel:string -> Table_def.t -> Eager_schema.Colref.Set.t list
(** The reliable keys themselves, as column sets qualified by [rel]. *)
