open Eager_schema

type t = { lhs : Colref.Set.t; rhs : Colref.Set.t }

let of_sets lhs rhs = { lhs; rhs }
let make lhs rhs = { lhs = Colref.set_of_list lhs; rhs = Colref.set_of_list rhs }

let key_dependency ~rel ~key ~all_cols =
  make (List.map (Colref.make rel) key) (List.map (Colref.make rel) all_cols)

let to_string t =
  Format.asprintf "%a -> %a" Colref.pp_set t.lhs Colref.pp_set t.rhs

let pp ppf t = Format.pp_print_string ppf (to_string t)
