open Eager_schema

let compute ~start ~constants ~equalities ~fds =
  let s = ref (Colref.Set.union start constants) in
  let changed = ref true in
  while !changed do
    changed := false;
    let add c =
      if not (Colref.Set.mem c !s) then begin
        s := Colref.Set.add c !s;
        changed := true
      end
    in
    List.iter
      (fun (a, b) ->
        if Colref.Set.mem a !s then add b;
        if Colref.Set.mem b !s then add a)
      equalities;
    List.iter
      (fun (fd : Fd.t) ->
        if Colref.Set.subset fd.Fd.lhs !s then Colref.Set.iter add fd.Fd.rhs)
      fds
  done;
  !s

let implies ~constants ~equalities ~fds (fd : Fd.t) =
  let closure = compute ~start:fd.Fd.lhs ~constants ~equalities ~fds in
  Colref.Set.subset fd.Fd.rhs closure
