open Eager_schema
open Eager_expr

type t = {
  constants : Colref.Set.t;
  equalities : (Colref.t * Colref.t) list;
  residual : Expr.t list;
}

let of_atoms atoms =
  List.fold_left
    (fun acc atom ->
      match Expr.classify_atom atom with
      | Expr.Col_eq_const (c, _) | Expr.Col_eq_param (c, _) ->
          { acc with constants = Colref.Set.add c acc.constants }
      | Expr.Col_eq_col (a, b) -> { acc with equalities = (a, b) :: acc.equalities }
      | Expr.Other_atom -> { acc with residual = atom :: acc.residual })
    { constants = Colref.Set.empty; equalities = []; residual = [] }
    atoms

let all_equality_atoms atoms =
  List.for_all
    (fun atom ->
      match Expr.classify_atom atom with Expr.Other_atom -> false | _ -> true)
    atoms
