(** Attribute-set closure (the transitive-closure step 4(c) of TestFD,
    illustrated by paper Figure 7).

    Starting from a seed set [S], repeatedly add:
    - columns bound to constants (every column determines a constant, so
      constants belong to every closure);
    - [v2] whenever an equality [v1 = v2] has one side in [S];
    - the right-hand side of a functional dependency whose left-hand side is
      contained in [S] (in TestFD the dependencies are the declared key
      dependencies of the two tables). *)

open Eager_schema

val compute :
  start:Colref.Set.t ->
  constants:Colref.Set.t ->
  equalities:(Colref.t * Colref.t) list ->
  fds:Fd.t list ->
  Colref.Set.t

val implies :
  constants:Colref.Set.t ->
  equalities:(Colref.t * Colref.t) list ->
  fds:Fd.t list ->
  Fd.t ->
  bool
(** [implies ... fd] — does the closure of [fd.lhs] cover [fd.rhs]? *)
