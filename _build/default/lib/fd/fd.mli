(** Functional dependencies over qualified columns (paper Definition 2).

    A dependency [lhs → rhs] holds in a table instance when any two rows that
    are [=ⁿ]-equivalent on [lhs] are [=ⁿ]-equivalent on [rhs] — note the
    "NULL equals NULL" reading on both sides, which is what makes derived
    dependencies well-defined in the presence of NULLs. *)

open Eager_schema

type t = { lhs : Colref.Set.t; rhs : Colref.Set.t }

val make : Colref.t list -> Colref.t list -> t
val of_sets : Colref.Set.t -> Colref.Set.t -> t

val key_dependency : rel:string -> key:string list -> all_cols:string list -> t
(** The dependency contributed by a declared key: key columns determine every
    column of the table (paper Section 4.3). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
