open Eager_schema

let determines ~key_of ~value_of items =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun item ->
      let k = key_of item in
      let v = value_of item in
      match Hashtbl.find_opt seen k with
      | None ->
          Hashtbl.add seen k v;
          true
      | Some v' -> v = v')
    items

let fd_holds ~schema ~lhs ~rhs rows =
  let lidx = Schema.indices schema lhs in
  let ridx = Schema.indices schema rhs in
  determines
    ~key_of:(fun row -> Row.key_on lidx row)
    ~value_of:(fun row -> Row.key_on ridx row)
    rows
