(** Mining equality information from a conjunctive component (TestFD step 2).

    Only two kinds of atomic conditions generate new functional dependencies
    (paper Section 6.3): Type 1 [v = c] (constant or host variable) and
    Type 2 [v1 = v2]. *)

open Eager_schema
open Eager_expr

type t = {
  constants : Colref.Set.t;  (** columns bound to a constant / host variable *)
  equalities : (Colref.t * Colref.t) list;
  residual : Expr.t list;  (** atoms of neither type *)
}

val of_atoms : Expr.t list -> t
(** Classify each atom of a conjunctive component. *)

val all_equality_atoms : Expr.t list -> bool
(** True when every atom is Type 1 or Type 2 — the retention criterion of
    TestFD step 2 applied to a whole clause. *)
