lib/fd/fd.mli: Colref Eager_schema Format
