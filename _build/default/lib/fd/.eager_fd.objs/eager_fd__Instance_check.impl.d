lib/fd/instance_check.ml: Eager_schema Hashtbl List Row Schema
