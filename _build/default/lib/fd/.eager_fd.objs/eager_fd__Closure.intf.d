lib/fd/closure.mli: Colref Eager_schema Fd
