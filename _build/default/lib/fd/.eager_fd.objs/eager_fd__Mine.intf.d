lib/fd/mine.mli: Colref Eager_expr Eager_schema Expr
