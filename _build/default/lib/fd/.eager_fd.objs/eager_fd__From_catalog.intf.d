lib/fd/from_catalog.mli: Eager_catalog Eager_schema Fd Table_def
