lib/fd/closure.ml: Colref Eager_schema Fd List
