lib/fd/mine.ml: Colref Eager_expr Eager_schema Expr List
