lib/fd/fd.ml: Colref Eager_schema Format List
