lib/fd/from_catalog.ml: Colref Eager_catalog Eager_schema Fd List Table_def
