lib/fd/instance_check.mli: Colref Eager_schema Eager_value Row Schema
