open Eager_schema
open Eager_catalog

let reliable_keys td =
  let not_null = Table_def.not_null td in
  List.filter
    (fun key -> List.for_all (fun c -> List.mem c not_null) key)
    (Table_def.keys td)

let key_fds ~rel td =
  let all_cols = Table_def.column_names td in
  List.map
    (fun key -> Fd.key_dependency ~rel ~key ~all_cols)
    (reliable_keys td)

let key_sets ~rel td =
  List.map
    (fun key -> Colref.set_of_list (List.map (Colref.make rel) key))
    (reliable_keys td)
