lib/exec/agg_exec.ml: Agg Array Eager_algebra Eager_expr Eager_schema Eager_value Expr Hashtbl List Row Schema Value
