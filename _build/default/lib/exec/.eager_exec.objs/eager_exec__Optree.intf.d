lib/exec/optree.mli: Format
