lib/exec/exec.mli: Colref Database Eager_algebra Eager_expr Eager_schema Eager_storage Expr Heap Optree Plan Row Schema
