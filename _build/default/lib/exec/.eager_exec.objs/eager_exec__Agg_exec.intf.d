lib/exec/agg_exec.mli: Agg Eager_algebra Eager_expr Eager_schema Eager_value Row Schema Value
