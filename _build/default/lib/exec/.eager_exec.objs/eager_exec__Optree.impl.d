lib/exec/optree.ml: Format List String
