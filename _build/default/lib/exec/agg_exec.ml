open Eager_value
open Eager_schema
open Eager_expr
open Eager_algebra

(* Accumulator for one aggregate-function call. *)
type acc =
  | Acount of int ref
  | Adistinct of (Value.t list, unit) Hashtbl.t  (* =ⁿ classes seen *)
  | Asum of Value.t option ref  (* None until the first non-NULL operand *)
  | Amin of Value.t option ref
  | Amax of Value.t option ref
  | Aavg of (float * int) ref   (* running sum and non-NULL count *)

(* A compiled Call site: the operand evaluator (None for COUNT star) plus a
   constructor for its accumulator and the fold step. *)
type call_site = { operand : (Row.t -> Value.t) option; kind : Agg.func }

(* The calc tree with Call nodes replaced by call-site indices. *)
type calc_ir =
  | Iconst of Value.t
  | Icall of int
  | Iarith of Expr.binop * calc_ir * calc_ir
  | Ineg of calc_ir

type compiled = { sites : call_site array; irs : calc_ir array }

type group_state = acc array

let compile ?params schema (aggs : Agg.t list) =
  let sites = ref [] in
  let n = ref 0 in
  let add_site kind operand =
    sites := { operand; kind } :: !sites;
    incr n;
    !n - 1
  in
  let rec compile_calc (c : Agg.calc) : calc_ir =
    match c with
    | Agg.Const v -> Iconst v
    | Agg.Call f ->
        let operand =
          match f with
          | Agg.Count_star -> None
          | Agg.Count e | Agg.Count_distinct e | Agg.Sum e | Agg.Min e
          | Agg.Max e | Agg.Avg e ->
              Some (Expr.compile ?params schema e)
        in
        Icall (add_site f operand)
    | Agg.Arith (op, a, b) -> Iarith (op, compile_calc a, compile_calc b)
    | Agg.Neg a -> Ineg (compile_calc a)
  in
  let irs = List.map (fun (a : Agg.t) -> compile_calc a.Agg.calc) aggs in
  { sites = Array.of_list (List.rev !sites); irs = Array.of_list irs }

let fresh t =
  Array.map
    (fun site ->
      match site.kind with
      | Agg.Count_star | Agg.Count _ -> Acount (ref 0)
      | Agg.Count_distinct _ -> Adistinct (Hashtbl.create 16)
      | Agg.Sum _ -> Asum (ref None)
      | Agg.Min _ -> Amin (ref None)
      | Agg.Max _ -> Amax (ref None)
      | Agg.Avg _ -> Aavg (ref (0., 0)))
    t.sites

let update t state row =
  Array.iteri
    (fun i site ->
      let v = match site.operand with None -> Value.Null | Some f -> f row in
      match state.(i) with
      | Acount r -> (
          match site.kind with
          | Agg.Count_star -> incr r
          | _ -> if not (Value.is_null v) then incr r)
      | Adistinct tbl ->
          if not (Value.is_null v) then
            Hashtbl.replace tbl (Row.key_on [| 0 |] [| v |]) ()
      | Asum r ->
          if not (Value.is_null v) then
            r := Some (match !r with None -> v | Some acc -> Value.add acc v)
      | Amin r ->
          if not (Value.is_null v) then
            r :=
              Some
                (match !r with
                | None -> v
                | Some acc -> if Value.compare_total v acc < 0 then v else acc)
      | Amax r ->
          if not (Value.is_null v) then
            r :=
              Some
                (match !r with
                | None -> v
                | Some acc -> if Value.compare_total v acc > 0 then v else acc)
      | Aavg r ->
          if not (Value.is_null v) then begin
            let fl =
              match v with
              | Value.Int x -> float_of_int x
              | Value.Float x -> x
              | _ -> 0.
            in
            let s, c = !r in
            r := (s +. fl, c + 1)
          end)
    t.sites

let result_of_acc = function
  | Acount r -> Value.Int !r
  | Adistinct tbl -> Value.Int (Hashtbl.length tbl)
  | Asum r | Amin r | Amax r -> ( match !r with None -> Value.Null | Some v -> v)
  | Aavg r ->
      let s, c = !r in
      if c = 0 then Value.Null else Value.Float (s /. float_of_int c)

let finalize t state =
  let rec eval_ir = function
    | Iconst v -> v
    | Icall i -> result_of_acc state.(i)
    | Iarith (op, a, b) ->
        let va = eval_ir a and vb = eval_ir b in
        (match op with
        | Expr.Add -> Value.add va vb
        | Expr.Sub -> Value.sub va vb
        | Expr.Mul -> Value.mul va vb
        | Expr.Div -> Value.div va vb)
    | Ineg a -> Value.neg (eval_ir a)
  in
  Array.map eval_ir t.irs

(* Unused Schema open guard *)
let _ = Schema.arity
