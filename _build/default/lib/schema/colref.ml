type t = { rel : string; name : string }

let make rel name = { rel; name }
let equal a b = String.equal a.rel b.rel && String.equal a.name b.name

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> String.compare a.name b.name
  | c -> c

let to_string c = if c.rel = "" then c.name else c.rel ^ "." ^ c.name
let pp ppf c = Format.pp_print_string ppf (to_string c)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list l = Set.of_list l

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp)
    (Set.elements s)
