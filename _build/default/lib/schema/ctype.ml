open Eager_value

type t = Int | Float | String | Bool

let accepts ty (v : Value.t) =
  match ty, v with
  | _, Value.Null -> true
  | Int, Value.Int _ -> true
  | Float, (Value.Float _ | Value.Int _) -> true
  | String, Value.Str _ -> true
  | Bool, Value.Bool _ -> true
  | _ -> false

let equal (a : t) (b : t) = a = b

let to_string = function
  | Int -> "INTEGER"
  | Float -> "FLOAT"
  | String -> "VARCHAR"
  | Bool -> "BOOLEAN"

let pp ppf t = Format.pp_print_string ppf (to_string t)
