type t = { arr : (Colref.t * Ctype.t) array; idx : int Colref.Map.t }

let make l =
  let arr = Array.of_list l in
  let idx =
    Array.to_seqi arr
    |> Seq.fold_left
         (fun m (i, (c, _)) ->
           if Colref.Map.mem c m then
             invalid_arg
               (Printf.sprintf "Schema.make: duplicate column %s"
                  (Colref.to_string c))
           else Colref.Map.add c i m)
         Colref.Map.empty
  in
  { arr; idx }

let cols t = t.arr
let arity t = Array.length t.arr
let colrefs t = Array.to_list t.arr |> List.map fst
let colset t = Colref.set_of_list (colrefs t)
let index_of_opt t c = Colref.Map.find_opt c t.idx

let index_of t c =
  match index_of_opt t c with Some i -> i | None -> raise Not_found

let find_name t name =
  let hits =
    Array.to_seqi t.arr
    |> Seq.filter (fun (_, (c, _)) -> String.equal c.Colref.name name)
    |> List.of_seq
  in
  match hits with
  | [] -> None
  | [ (i, (c, _)) ] -> Some (i, c)
  | _ -> failwith (Printf.sprintf "ambiguous column name %s" name)

let type_at t i = snd t.arr.(i)
let type_of t c = type_at t (index_of t c)
let indices t l = Array.of_list (List.map (index_of t) l)
let concat a b = make (Array.to_list a.arr @ Array.to_list b.arr)

let project t l =
  make (List.map (fun c -> (c, type_of t c)) l)

let mem t c = Colref.Map.mem c t.idx

let rename_rel rel t =
  make
    (Array.to_list t.arr
    |> List.map (fun (c, ty) -> (Colref.make rel c.Colref.name, ty)))

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (c, ty) -> Format.fprintf ppf "%a %a" Colref.pp c Ctype.pp ty))
    (Array.to_list t.arr)
