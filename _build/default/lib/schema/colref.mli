(** Qualified column references.

    A column is identified by the (range-variable, column-name) pair, e.g.
    [E.DeptID].  The range variable is the table alias introduced in the
    FROM clause; after binding every column reference is fully qualified. *)

type t = { rel : string; name : string }

val make : string -> string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
