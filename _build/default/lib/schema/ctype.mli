(** Column types of the SQL subset. *)

type t = Int | Float | String | Bool

val accepts : t -> Eager_value.Value.t -> bool
(** [accepts ty v] is true when [v] may be stored in a column of type [ty].
    NULL is accepted by every type (nullability is a separate constraint);
    [Int] values are accepted by [Float] columns. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
