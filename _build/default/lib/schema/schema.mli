(** A schema maps positions to typed, qualified columns. *)

type t

val make : (Colref.t * Ctype.t) list -> t
(** Raises [Invalid_argument] on duplicate column references. *)

val cols : t -> (Colref.t * Ctype.t) array
val arity : t -> int
val colrefs : t -> Colref.t list
val colset : t -> Colref.Set.t

val index_of : t -> Colref.t -> int
(** Position of a fully-qualified column.  Raises [Not_found]. *)

val index_of_opt : t -> Colref.t -> int option

val find_name : t -> string -> (int * Colref.t) option
(** Resolve an unqualified name.  Raises [Failure] when ambiguous. *)

val type_at : t -> int -> Ctype.t
val type_of : t -> Colref.t -> Ctype.t

val indices : t -> Colref.t list -> int array
(** Positions of the given columns, in the given order. *)

val concat : t -> t -> t
(** Schema of a product/join row: left columns then right columns. *)

val project : t -> Colref.t list -> t
val mem : t -> Colref.t -> bool
val rename_rel : string -> t -> t
(** Re-qualify every column with a new range variable. *)

val pp : Format.formatter -> t -> unit
