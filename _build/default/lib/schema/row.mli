(** Rows are flat arrays of values; the interpretation of positions is given
    by a {!Schema.t}. *)

type t = Eager_value.Value.t array

val concat : t -> t -> t
val project : int array -> t -> t

val null_eq_on : int array -> t -> t -> bool
(** Row equivalence with respect to a column subset (paper Definition 1):
    pointwise [=ⁿ], i.e. NULL equals NULL. *)

val compare_on : int array -> t -> t -> int
(** Lexicographic total order on a column subset; consistent with
    [null_eq_on] (equal iff [null_eq_on]). *)

val key_on : int array -> t -> Eager_value.Value.t list
(** Grouping key: the projected values as a list, suitable for hashing.
    Two rows have equal keys iff they are [null_eq_on]-equivalent (Float
    values that are [null_eq] to Int values are normalised). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
