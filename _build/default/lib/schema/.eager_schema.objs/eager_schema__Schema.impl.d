lib/schema/schema.ml: Array Colref Ctype Format List Printf Seq String
