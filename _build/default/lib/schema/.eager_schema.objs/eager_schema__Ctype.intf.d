lib/schema/ctype.mli: Eager_value Format
