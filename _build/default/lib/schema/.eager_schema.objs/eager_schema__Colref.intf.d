lib/schema/colref.mli: Format Map Set
