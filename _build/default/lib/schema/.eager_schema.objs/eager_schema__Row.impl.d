lib/schema/row.ml: Array Eager_value Float Format String Value
