lib/schema/schema.mli: Colref Ctype Format
