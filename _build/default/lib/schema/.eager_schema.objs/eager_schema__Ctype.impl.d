lib/schema/ctype.ml: Eager_value Format Value
