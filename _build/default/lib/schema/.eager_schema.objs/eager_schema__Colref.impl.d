lib/schema/colref.ml: Format Map Set String
