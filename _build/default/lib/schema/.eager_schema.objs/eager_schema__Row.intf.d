lib/schema/row.mli: Eager_value Format
