open Eager_value
open Eager_schema

type binop = Add | Sub | Mul | Div
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of Colref.t
  | Param of string
  | Arith of binop * t * t
  | Neg of t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t
  | Like of { negated : bool; arg : t; pattern : string }
  | Case of { branches : (t * t) list; else_ : t option }

let etrue = Const (Value.Bool true)
let efalse = Const (Value.Bool false)
let col rel name = Col (Colref.make rel name)
let int n = Const (Value.Int n)
let str s = Const (Value.Str s)
let eq a b = Cmp (Eq, a, b)

let conj = function
  | [] -> etrue
  | e :: rest -> List.fold_left (fun acc e -> And (acc, e)) e rest

let disj = function
  | [] -> efalse
  | e :: rest -> List.fold_left (fun acc e -> Or (acc, e)) e rest

let rec conjuncts e =
  match e with
  | And (a, b) -> conjuncts a @ conjuncts b
  | Const (Value.Bool true) -> []
  | _ -> [ e ]

let rec disjuncts e =
  match e with
  | Or (a, b) -> disjuncts a @ disjuncts b
  | Const (Value.Bool false) -> []
  | _ -> [ e ]

let rec columns e =
  match e with
  | Const _ | Param _ -> Colref.Set.empty
  | Col c -> Colref.Set.singleton c
  | Neg a | Not a | Is_null a | Is_not_null a -> columns a
  | Like { arg; _ } -> columns arg
  | Case { branches; else_ } ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> Colref.Set.union acc (Colref.Set.union (columns c) (columns v)))
          Colref.Set.empty branches
      in
      (match else_ with
      | None -> acc
      | Some e -> Colref.Set.union acc (columns e))
  | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      Colref.Set.union (columns a) (columns b)

let params e =
  let rec go acc = function
    | Param p -> p :: acc
    | Const _ | Col _ -> acc
    | Neg a | Not a | Is_null a | Is_not_null a -> go acc a
    | Like { arg; _ } -> go acc arg
    | Case { branches; else_ } ->
        let acc =
          List.fold_left (fun acc (c, v) -> go (go acc c) v) acc branches
        in
        (match else_ with None -> acc | Some e -> go acc e)
    | Arith (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
        go (go acc a) b
  in
  List.sort_uniq String.compare (go [] e)

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Col x, Col y -> Colref.equal x y
  | Param x, Param y -> String.equal x y
  | Neg x, Neg y | Not x, Not y -> equal x y
  | Is_null x, Is_null y | Is_not_null x, Is_not_null y -> equal x y
  | Like l1, Like l2 ->
      l1.negated = l2.negated && String.equal l1.pattern l2.pattern
      && equal l1.arg l2.arg
  | Case c1, Case c2 ->
      List.length c1.branches = List.length c2.branches
      && List.for_all2
           (fun (a1, v1) (a2, v2) -> equal a1 a2 && equal v1 v2)
           c1.branches c2.branches
      && (match c1.else_, c2.else_ with
         | None, None -> true
         | Some e1, Some e2 -> equal e1 e2
         | _ -> false)
  | Arith (o1, x1, y1), Arith (o2, x2, y2) -> o1 = o2 && equal x1 x2 && equal y1 y2
  | Cmp (o1, x1, y1), Cmp (o2, x2, y2) -> o1 = o2 && equal x1 x2 && equal y1 y2
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
      equal x1 x2 && equal y1 y2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Evaluation *)

type env = string -> Value.t

let no_params : env = fun _ -> Value.Null

let apply_cmp op a b : Tbool.t =
  match op with
  | Eq -> Value.cmp_eq a b
  | Ne -> Value.cmp_ne a b
  | Lt -> Value.cmp_lt a b
  | Le -> Value.cmp_le a b
  | Gt -> Value.cmp_gt a b
  | Ge -> Value.cmp_ge a b

let apply_arith op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b

let value_of_tbool : Tbool.t -> Value.t = function
  | True -> Value.Bool true
  | False -> Value.Bool false
  | Unknown -> Value.Null

let tbool_of_value : Value.t -> Tbool.t = function
  | Value.Bool true -> True
  | Value.Bool false -> False
  | Value.Null -> Unknown
  | _ -> False (* non-boolean in predicate position never holds *)

(* Classic wildcard matching with backtracking on the last '%':
   linear-ish in practice, no exponential blow-up. *)
let like_matches ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si star_pi star_si =
    if si >= ns then begin
      (* consume trailing '%'s *)
      let rec only_percent k = k >= np || (pattern.[k] = '%' && only_percent (k + 1)) in
      if only_percent pi then true
      else if star_pi >= 0 && star_si < ns then
        go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
      else false
    end
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si pi si
    else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

(* Compile to closures with column indices resolved once. *)
let rec compile ?(params = no_params) schema e : Row.t -> Value.t =
  match e with
  | Const v -> fun _ -> v
  | Col c ->
      let i =
        match Schema.index_of_opt schema c with
        | Some i -> i
        | None ->
            failwith
              (Printf.sprintf "unknown column %s in %s" (Colref.to_string c)
                 (Format.asprintf "%a" Schema.pp schema))
      in
      fun row -> row.(i)
  | Param p ->
      let v = params p in
      fun _ -> v
  | Arith (op, a, b) ->
      let fa = compile ~params schema a and fb = compile ~params schema b in
      fun row -> apply_arith op (fa row) (fb row)
  | Neg a ->
      let fa = compile ~params schema a in
      fun row -> Value.neg (fa row)
  | Cmp (op, a, b) ->
      let fa = compile ~params schema a and fb = compile ~params schema b in
      fun row -> value_of_tbool (apply_cmp op (fa row) (fb row))
  | And (a, b) ->
      let fa = compile_pred ~params schema a
      and fb = compile_pred ~params schema b in
      fun row -> value_of_tbool (Tbool.and_ (fa row) (fb row))
  | Or (a, b) ->
      let fa = compile_pred ~params schema a
      and fb = compile_pred ~params schema b in
      fun row -> value_of_tbool (Tbool.or_ (fa row) (fb row))
  | Not a ->
      let fa = compile_pred ~params schema a in
      fun row -> value_of_tbool (Tbool.not_ (fa row))
  | Is_null a ->
      let fa = compile ~params schema a in
      fun row -> Value.Bool (Value.is_null (fa row))
  | Is_not_null a ->
      let fa = compile ~params schema a in
      fun row -> Value.Bool (not (Value.is_null (fa row)))
  | Like { negated; arg; pattern } -> (
      let fa = compile ~params schema arg in
      fun row ->
        match fa row with
        | Value.Str s ->
            let m = like_matches ~pattern s in
            Value.Bool (if negated then not m else m)
        | Value.Null -> Value.Null
        | _ -> Value.Bool false)
  | Case { branches; else_ } ->
      let compiled =
        List.map
          (fun (c, v) ->
            (compile_pred ~params schema c, compile ~params schema v))
          branches
      in
      let fallback =
        match else_ with
        | None -> fun _ -> Value.Null
        | Some e -> compile ~params schema e
      in
      fun row ->
        let rec pick = function
          | [] -> fallback row
          | (c, v) :: rest -> if Tbool.holds (c row) then v row else pick rest
        in
        pick compiled

and compile_pred ?(params = no_params) schema e : Row.t -> Tbool.t =
  match e with
  | And (a, b) ->
      let fa = compile_pred ~params schema a
      and fb = compile_pred ~params schema b in
      fun row -> Tbool.and_ (fa row) (fb row)
  | Or (a, b) ->
      let fa = compile_pred ~params schema a
      and fb = compile_pred ~params schema b in
      fun row -> Tbool.or_ (fa row) (fb row)
  | Not a ->
      let fa = compile_pred ~params schema a in
      fun row -> Tbool.not_ (fa row)
  | Cmp (op, a, b) ->
      let fa = compile ~params schema a and fb = compile ~params schema b in
      fun row -> apply_cmp op (fa row) (fb row)
  | _ ->
      let f = compile ~params schema e in
      fun row -> tbool_of_value (f row)

let eval ?params schema e row = compile ?params schema e row
let eval_pred ?params schema e row = compile_pred ?params schema e row

(* ------------------------------------------------------------------ *)
(* Typing *)

let rec infer schema e : (Ctype.t, string) result =
  let ( let* ) = Result.bind in
  let numeric side =
    let* t = infer schema side in
    match t with
    | Ctype.Int | Ctype.Float -> Ok t
    | t -> Error (Printf.sprintf "expected numeric, got %s" (Ctype.to_string t))
  in
  match e with
  | Const Value.Null -> Ok Ctype.Int (* NULL literal: any type; pick Int *)
  | Const (Value.Int _) -> Ok Ctype.Int
  | Const (Value.Float _) -> Ok Ctype.Float
  | Const (Value.Str _) -> Ok Ctype.String
  | Const (Value.Bool _) -> Ok Ctype.Bool
  | Param _ -> Ok Ctype.Int
  | Col c -> (
      match Schema.index_of_opt schema c with
      | Some i -> Ok (Schema.type_at schema i)
      | None -> Error (Printf.sprintf "unknown column %s" (Colref.to_string c)))
  | Neg a -> numeric a
  | Arith (_, a, b) ->
      let* ta = numeric a in
      let* tb = numeric b in
      Ok (if Ctype.equal ta tb then ta else Ctype.Float)
  | Cmp (_, a, b) ->
      let* ta = infer schema a in
      let* tb = infer schema b in
      let compatible =
        Ctype.equal ta tb
        || match ta, tb with
           | (Ctype.Int | Ctype.Float), (Ctype.Int | Ctype.Float) -> true
           | _ -> false
      in
      if compatible then Ok Ctype.Bool
      else
        Error
          (Printf.sprintf "cannot compare %s with %s" (Ctype.to_string ta)
             (Ctype.to_string tb))
  | And (a, b) | Or (a, b) ->
      let* ta = infer schema a in
      let* tb = infer schema b in
      if Ctype.equal ta Ctype.Bool && Ctype.equal tb Ctype.Bool then
        Ok Ctype.Bool
      else Error "boolean connective over non-boolean operands"
  | Not a ->
      let* ta = infer schema a in
      if Ctype.equal ta Ctype.Bool then Ok Ctype.Bool
      else Error "NOT over non-boolean operand"
  | Is_null a | Is_not_null a ->
      let* _ = infer schema a in
      Ok Ctype.Bool
  | Like { arg; _ } ->
      let* ta = infer schema arg in
      if Ctype.equal ta Ctype.String then Ok Ctype.Bool
      else Error "LIKE requires a string operand"
  | Case { branches; else_ } -> (
      let* () =
        List.fold_left
          (fun acc (c, _) ->
            let* () = acc in
            let* tc = infer schema c in
            if Ctype.equal tc Ctype.Bool then Ok ()
            else Error "CASE condition must be boolean")
          (Ok ()) branches
      in
      let results =
        List.map snd branches @ match else_ with None -> [] | Some e -> [ e ]
      in
      match results with
      | [] -> Error "CASE needs at least one branch"
      | first :: rest ->
          let* t0 = infer schema first in
          List.fold_left
            (fun acc e ->
              let* t = acc in
              let* te = infer schema e in
              if Ctype.equal t te then Ok t
              else
                match t, te with
                | (Ctype.Int | Ctype.Float), (Ctype.Int | Ctype.Float) ->
                    Ok Ctype.Float
                | _ -> Error "CASE branches have incompatible types")
            (Ok t0) rest)

(* ------------------------------------------------------------------ *)
(* Normal forms *)

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let rec nnf e =
  match e with
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Not a -> nnf_neg a
  | _ -> e

and nnf_neg e =
  match e with
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)
  | Not a -> nnf a
  | Cmp (op, a, b) -> Cmp (negate_cmp op, a, b)
  | Is_null a -> Is_not_null a
  | Is_not_null a -> Is_null a
  | Like l -> Like { l with negated = not l.negated }
  | Const (Value.Bool b) -> Const (Value.Bool (not b))
  | e -> Not e

(* NOTE on NNF and 3VL: ¬(a = b) and (a ≠ b) agree in three-valued logic
   (both unknown when NULL is involved), and De Morgan holds in Kleene
   logic, so [nnf] preserves the three-valued semantics exactly. *)

let rec cnf_of e : t list list =
  match nnf e with
  | Const (Value.Bool true) -> []
  | Const (Value.Bool false) -> [ [] ]
  | And (a, b) -> cnf_of a @ cnf_of b
  | Or (a, b) ->
      let ca = cnf_of a and cb = cnf_of b in
      if ca = [] || cb = [] then [] (* one side is TRUE: the OR is TRUE *)
      else List.concat_map (fun cla -> List.map (fun clb -> cla @ clb) cb) ca
  | lit -> [ [ lit ] ]

let cnf e = cnf_of e

let dnf_of_cnf ?(cap = 64) clauses =
  (* DNF components are one literal picked from each CNF clause. *)
  let rec go acc = function
    | [] -> Some acc
    | clause :: rest ->
        let acc' =
          List.concat_map (fun comp -> List.map (fun lit -> lit :: comp) clause) acc
        in
        if acc' = [] then Some [] (* an empty clause: condition is false *)
        else if List.length acc' > cap then None
        else go acc' rest
  in
  go [ [] ] clauses

let of_cnf clauses = conj (List.map disj clauses)
let of_dnf comps = disj (List.map conj comps)

(* ------------------------------------------------------------------ *)
(* Atoms *)

type atom_class =
  | Col_eq_const of Colref.t * Value.t
  | Col_eq_param of Colref.t * string
  | Col_eq_col of Colref.t * Colref.t
  | Other_atom

let classify_atom = function
  | Cmp (Eq, Col c, Const v) | Cmp (Eq, Const v, Col c) -> Col_eq_const (c, v)
  | Cmp (Eq, Col c, Param p) | Cmp (Eq, Param p, Col c) -> Col_eq_param (c, p)
  | Cmp (Eq, Col a, Col b) -> Col_eq_col (a, b)
  | _ -> Other_atom

(* ------------------------------------------------------------------ *)
(* Predicate classification *)

let split_conjuncts ~left ~right c =
  let place (c1, c0, c2) e =
    let cols = columns e in
    let in_left = not (Colref.Set.is_empty (Colref.Set.inter cols left)) in
    let in_right = not (Colref.Set.is_empty (Colref.Set.inter cols right)) in
    let unknown = Colref.Set.diff cols (Colref.Set.union left right) in
    if not (Colref.Set.is_empty unknown) then
      failwith
        (Printf.sprintf "predicate mentions unknown column %s"
           (Colref.to_string (Colref.Set.choose unknown)));
    match in_left, in_right with
    | true, true -> (c1, e :: c0, c2)
    | true, false -> (e :: c1, c0, c2)
    | false, true -> (c1, c0, e :: c2)
    | false, false -> (e :: c1, c0, c2)
  in
  let c1, c0, c2 = List.fold_left place ([], [], []) (conjuncts c) in
  (List.rev c1, List.rev c0, List.rev c2)

(* ------------------------------------------------------------------ *)
(* Printing *)

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmpop_str = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec to_string e =
  match e with
  | Const v -> Value.to_string v
  | Col c -> Colref.to_string c
  | Param p -> ":" ^ p
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (to_string a) (binop_str op) (to_string b)
  | Neg a -> Printf.sprintf "(-%s)" (to_string a)
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (to_string a) (cmpop_str op) (to_string b)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "(NOT %s)" (to_string a)
  | Is_null a -> Printf.sprintf "%s IS NULL" (to_string a)
  | Is_not_null a -> Printf.sprintf "%s IS NOT NULL" (to_string a)
  | Like { negated; arg; pattern } ->
      Printf.sprintf "%s %sLIKE '%s'" (to_string arg)
        (if negated then "NOT " else "")
        pattern
  | Case { branches; else_ } ->
      Printf.sprintf "CASE%s%s END"
        (String.concat ""
           (List.map
              (fun (c, v) ->
                Printf.sprintf " WHEN %s THEN %s" (to_string c) (to_string v))
              branches))
        (match else_ with
        | None -> ""
        | Some e -> " ELSE " ^ to_string e)

let pp ppf e = Format.pp_print_string ppf (to_string e)
