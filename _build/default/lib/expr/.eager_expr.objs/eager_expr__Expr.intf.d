lib/expr/expr.mli: Colref Ctype Eager_schema Eager_value Format Row Schema Tbool Value
