lib/expr/expr.ml: Array Colref Ctype Eager_schema Eager_value Format List Printf Result Row Schema String Tbool Value
