(** Scalar expressions and search conditions of the SQL subset.

    Search conditions evaluate under SQL2 three-valued logic ({!Eager_value.Tbool});
    a WHERE clause keeps a row only when the condition {i holds} (unknown is
    treated as false, the ⌊·⌋ interpreter of the paper). *)

open Eager_value
open Eager_schema

type binop = Add | Sub | Mul | Div
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Col of Colref.t
  | Param of string  (** host variable, e.g. [:uid]; fixed during evaluation *)
  | Arith of binop * t * t
  | Neg of t
  | Cmp of cmpop * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Is_not_null of t
  | Like of { negated : bool; arg : t; pattern : string }
      (** SQL LIKE: [%] matches any sequence, [_] any single character.
          NULL argument yields unknown. *)
  | Case of { branches : (t * t) list; else_ : t option }
      (** searched CASE: the first branch whose condition {i holds} (3VL)
          supplies the value; otherwise [else_], or NULL if absent. *)

val etrue : t
val efalse : t
val col : string -> string -> t
val int : int -> t
val str : string -> t
val eq : t -> t -> t
val conj : t list -> t
(** Conjunction of a list; empty list is [etrue]. *)

val disj : t list -> t
(** Disjunction of a list; empty list is [efalse]. *)

val conjuncts : t -> t list
(** Flatten nested [And]s. [conjuncts etrue = []]. *)

val disjuncts : t -> t list

val columns : t -> Colref.Set.t
val params : t -> string list
val equal : t -> t -> bool

(** {2 Evaluation} *)

type env = string -> Value.t
(** Host-variable environment.  [fun _ -> Value.Null] when there are none. *)

val no_params : env

val eval : ?params:env -> Schema.t -> t -> Row.t -> Value.t
(** Scalar evaluation; boolean sub-results surface as [Bool]/[Null]. *)

val eval_pred : ?params:env -> Schema.t -> t -> Row.t -> Tbool.t
(** Three-valued evaluation of a search condition. *)

val compile_pred : ?params:env -> Schema.t -> t -> Row.t -> Tbool.t
(** Like {!eval_pred} but resolves all column positions once up front;
    use this on hot paths (the returned closure is applied per row). *)

val compile : ?params:env -> Schema.t -> t -> Row.t -> Value.t

(** {2 Typing} *)

val infer : Schema.t -> t -> (Ctype.t, string) result
(** Light type inference; comparisons and connectives are [Bool]. *)

(** {2 Normal forms} *)

val nnf : t -> t
(** Negation normal form: [Not] pushed to atoms and absorbed into
    comparison/IS NULL duals. *)

val cnf : t -> t list list
(** Conjunctive normal form over literals, as a list of clauses.
    [cnf etrue = []]. *)

val dnf_of_cnf : ?cap:int -> t list list -> t list list option
(** Distribute a CNF into DNF (list of conjunctive components).  Returns
    [None] when the result would exceed [cap] (default 64) components —
    callers must then answer conservatively. *)

val of_cnf : t list list -> t
val of_dnf : t list list -> t

(** {2 Atoms (TestFD step 2)} *)

type atom_class =
  | Col_eq_const of Colref.t * Value.t  (** Type 1: [v = c] *)
  | Col_eq_param of Colref.t * string   (** Type 1 with a host variable *)
  | Col_eq_col of Colref.t * Colref.t   (** Type 2: [v1 = v2] *)
  | Other_atom

val classify_atom : t -> atom_class

(** {2 Predicate classification (Section 3)} *)

val split_conjuncts :
  left:Colref.Set.t -> right:Colref.Set.t -> t -> t list * t list * t list
(** [split_conjuncts ~left ~right c] partitions the conjuncts of [c] into
    [(c1, c0, c2)]: conjuncts touching only [left] columns, conjuncts
    touching both sides, and conjuncts touching only [right] columns.
    Column-free conjuncts land in [c1].  Raises [Failure] if a conjunct
    mentions a column in neither set. *)

val like_matches : pattern:string -> string -> bool
(** The LIKE pattern matcher, exposed for tests: [%] = any sequence,
    [_] = any single character, everything else literal. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
