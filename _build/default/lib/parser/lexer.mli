(** Hand-written SQL lexer. *)

type token =
  | Tident of string  (** identifiers and keywords, case preserved *)
  | Tint of int
  | Tfloat of float
  | Tstring of string  (** contents of a ['...'] literal *)
  | Tparam of string  (** [:name] *)
  | Tsym of string  (** punctuation and operators *)
  | Teof

exception Lex_error of string

val tokenize : string -> token list
val token_to_string : token -> string
