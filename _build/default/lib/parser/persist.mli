(** Saving and restoring a database as a directory of files:

    - [schema.sql] — CREATE DOMAIN / CREATE TABLE / CREATE VIEW statements,
      regenerated from the catalog and re-parsed on load (so the persisted
      schema is itself a test of the SQL round-trip);
    - one [<table>.csv] per base table, with a header row.

    CSV encoding: fields separated by commas; strings double-quoted with
    [""] escaping; NULL is the bare token [NULL]; booleans are
    [TRUE]/[FALSE].  Rows are loaded back through the raw heap (the dump is
    trusted; constraints were enforced when the data was first inserted,
    and re-checking FKs would impose a table ordering). *)

open Eager_storage

val save : Database.t -> dir:string -> (unit, string) result
(** Creates [dir] if needed and overwrites its contents. *)

val load : dir:string -> (Database.t, string) result

val ddl_of_database : Database.t -> string
(** The [schema.sql] text, exposed for tests. *)
