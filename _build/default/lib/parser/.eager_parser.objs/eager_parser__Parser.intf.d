lib/parser/parser.mli: Ast
