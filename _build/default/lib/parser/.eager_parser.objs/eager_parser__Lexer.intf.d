lib/parser/lexer.mli:
