lib/parser/lexer.ml: Buffer List Printf String
