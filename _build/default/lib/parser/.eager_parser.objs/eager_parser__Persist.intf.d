lib/parser/persist.mli: Database Eager_storage
