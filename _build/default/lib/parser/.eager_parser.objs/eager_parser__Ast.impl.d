lib/parser/ast.ml: Format List Printf String
