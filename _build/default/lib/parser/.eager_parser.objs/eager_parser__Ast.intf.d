lib/parser/ast.mli: Format
