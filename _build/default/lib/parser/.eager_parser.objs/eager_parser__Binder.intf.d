lib/parser/binder.mli: Agg Ast Canonical Colref Database Eager_algebra Eager_core Eager_expr Eager_schema Eager_storage Expr Plan
