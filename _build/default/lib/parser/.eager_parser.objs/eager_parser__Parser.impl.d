lib/parser/parser.ml: Array Ast Lexer List Printf String
