open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* DDL generation *)

let type_sql (c : Table_def.column_def) =
  match c.Table_def.domain with
  | Some d -> d
  | None -> (
      match c.Table_def.ctype with
      | Ctype.Int -> "INTEGER"
      | Ctype.Float -> "FLOAT"
      | Ctype.String -> "VARCHAR(255)"
      | Ctype.Bool -> "BOOLEAN")

let ddl_of_domain (d : Catalog.domain_def) =
  let base =
    match d.Catalog.dtype with
    | Ctype.Int -> "INTEGER"
    | Ctype.Float -> "FLOAT"
    | Ctype.String -> "VARCHAR(255)"
    | Ctype.Bool -> "BOOLEAN"
  in
  match d.Catalog.dcheck with
  | None -> Printf.sprintf "CREATE DOMAIN %s %s;" d.Catalog.dname base
  | Some e ->
      Printf.sprintf "CREATE DOMAIN %s %s CHECK (%s);" d.Catalog.dname base
        (Expr.to_string e)

let ddl_of_table (td : Table_def.t) =
  let cols =
    List.map
      (fun (c : Table_def.column_def) ->
        Printf.sprintf "  %s %s" c.Table_def.cname (type_sql c))
      td.Table_def.columns
  in
  let constraints =
    List.map
      (fun c ->
        match c with
        | Constr.Primary_key k ->
            Printf.sprintf "  PRIMARY KEY (%s)" (String.concat ", " k)
        | Constr.Unique k ->
            Printf.sprintf "  UNIQUE (%s)" (String.concat ", " k)
        | Constr.Not_null col -> Printf.sprintf "  %s NOT NULL" col
        | Constr.Check e ->
            Printf.sprintf "  CHECK (%s)" (Expr.to_string e)
        | Constr.Foreign_key { cols; ref_table; ref_cols } ->
            Printf.sprintf "  FOREIGN KEY (%s) REFERENCES %s (%s)"
              (String.concat ", " cols) ref_table
              (String.concat ", " ref_cols))
      td.Table_def.constraints
  in
  (* NOT NULL is expressed as a column suffix in our grammar *)
  let not_null_cols =
    List.filter_map
      (function Constr.Not_null c -> Some c | _ -> None)
      td.Table_def.constraints
  in
  let cols =
    List.map2
      (fun line (c : Table_def.column_def) ->
        if List.mem c.Table_def.cname not_null_cols then line ^ " NOT NULL"
        else line)
      cols td.Table_def.columns
  in
  let constraints =
    List.filter
      (fun line ->
        (* drop the standalone NOT NULL lines now folded into columns *)
        not
          (List.exists
             (fun c -> line = Printf.sprintf "  %s NOT NULL" c)
             not_null_cols))
      constraints
  in
  Printf.sprintf "CREATE TABLE %s (\n%s);" td.Table_def.tname
    (String.concat ",\n" (cols @ constraints))

let ddl_of_view (v : Catalog.view_def) =
  Printf.sprintf "CREATE VIEW %s AS %s;" v.Catalog.vname v.Catalog.vsql

let ddl_of_index (i : Catalog.index_def) =
  Printf.sprintf "CREATE INDEX %s ON %s (%s);" i.Catalog.iname
    i.Catalog.itable
    (String.concat ", " i.Catalog.icols)

let ddl_of_database db =
  let cat = Database.catalog db in
  String.concat "\n"
    (List.map ddl_of_domain (Catalog.domains cat)
    @ List.map ddl_of_table (Catalog.tables cat)
    @ List.map ddl_of_view (Catalog.views cat)
    @ List.map ddl_of_index (Catalog.indexes cat))

(* ------------------------------------------------------------------ *)
(* CSV encoding *)

let encode_value = function
  | Value.Null -> "NULL"
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%h" f
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Str s ->
      if String.contains s '\n' then
        failwith "cannot persist a string containing a newline";
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' then Buffer.add_string buf "\"\""
          else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Buffer.contents buf

let encode_row row =
  String.concat "," (Array.to_list (Array.map encode_value row))

(* split one CSV line into raw fields, honouring quotes *)
let split_fields line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then begin
      fields := Buffer.contents buf :: !fields;
      Ok ()
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else begin
            Buffer.add_char buf '"';
            go (i + 1) false
          end
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = ',' then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) (c = '"')
      end
  in
  let* () = go 0 false in
  Ok (List.rev !fields)

let decode_value raw : (Value.t, string) result =
  let n = String.length raw in
  if raw = "NULL" then Ok Value.Null
  else if raw = "TRUE" then Ok (Value.Bool true)
  else if raw = "FALSE" then Ok (Value.Bool false)
  else if n >= 2 && raw.[0] = '"' && raw.[n - 1] = '"' then
    Ok (Value.Str (String.sub raw 1 (n - 2)))
  else
    match int_of_string_opt raw with
    | Some i -> Ok (Value.Int i)
    | None -> (
        match float_of_string_opt raw with
        | Some f -> Ok (Value.Float f)
        | None -> Error (Printf.sprintf "cannot decode CSV field %S" raw))

(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save db ~dir =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    write_file (Filename.concat dir "schema.sql") (ddl_of_database db);
    List.iter
      (fun (td : Table_def.t) ->
        let h = Database.heap db td.Table_def.tname in
        let buf = Buffer.create 4096 in
        Buffer.add_string buf (String.concat "," (Table_def.column_names td));
        Buffer.add_char buf '\n';
        Heap.iter
          (fun row ->
            Buffer.add_string buf (encode_row row);
            Buffer.add_char buf '\n')
          h;
        write_file
          (Filename.concat dir (td.Table_def.tname ^ ".csv"))
          (Buffer.contents buf))
      (Catalog.tables (Database.catalog db))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
  | exception Failure msg -> Error msg

let load ~dir =
  let db = Database.create () in
  let schema_path = Filename.concat dir "schema.sql" in
  if not (Sys.file_exists schema_path) then
    Error (Printf.sprintf "%s not found" schema_path)
  else begin
    let* _ =
      match Binder.run_script db (read_file schema_path) with
      | Ok _ -> Ok ()
      | Error msg -> Error ("schema.sql: " ^ msg)
    in
    let* () =
      List.fold_left
        (fun acc (td : Table_def.t) ->
          let* () = acc in
          let path = Filename.concat dir (td.Table_def.tname ^ ".csv") in
          if not (Sys.file_exists path) then
            Error (Printf.sprintf "%s not found" path)
          else begin
            let lines =
              String.split_on_char '\n' (read_file path)
              |> List.filter (fun l -> String.trim l <> "")
            in
            match lines with
            | [] -> Error (Printf.sprintf "%s: missing header" path)
            | _header :: rows ->
                let h = Database.heap db td.Table_def.tname in
                List.fold_left
                  (fun acc line ->
                    let* () = acc in
                    let* fields = split_fields line in
                    let* values =
                      List.fold_left
                        (fun acc f ->
                          let* acc = acc in
                          let* v = decode_value f in
                          Ok (v :: acc))
                        (Ok []) fields
                      |> Result.map List.rev
                    in
                    (* trusted dump: straight into the heap *)
                    match Heap.insert h (Array.of_list values) with
                    | () -> Ok ()
                    | exception Invalid_argument msg -> Error msg)
                  (Ok ()) rows
          end)
        (Ok ())
        (Catalog.tables (Database.catalog db))
    in
    Ok db
  end
