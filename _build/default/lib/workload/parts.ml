open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

type t = { db : Database.t; query : Canonical.t }

let setup ?(seed = 23) ?(parts = 5_000) ?(suppliers = 80) ?(classes = 40) () =
  let g = Gen.make seed in
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Supplier"
       [
         { Table_def.cname = "SupplierNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Name"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "Address"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "SupplierNo" ] ]);
  Database.create_table db
    (Table_def.make "Part"
       [
         { Table_def.cname = "ClassCode"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "PartNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "PartName"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "SupplierNo"; ctype = Ctype.Int; domain = None };
       ]
       [
         Constr.Primary_key [ "ClassCode"; "PartNo" ];
         Constr.Foreign_key
           {
             cols = [ "SupplierNo" ];
             ref_table = "Supplier";
             ref_cols = [ "SupplierNo" ];
           };
       ]);
  for s = 1 to suppliers do
    Database.insert_exn db "Supplier"
      [
        Value.Int s;
        Value.Str (Gen.name g);
        Value.Str (Printf.sprintf "%d %s Street" (1 + Gen.int g 900) (Gen.name g));
      ]
  done;
  for p = 1 to parts do
    let class_code = 1 + Gen.int g classes in
    let supplier =
      if Gen.bool g 0.05 then Value.Null
      else Value.Int (1 + Gen.int g suppliers)
    in
    Database.insert_exn db "Part"
      [ Value.Int class_code; Value.Int p; Value.Str (Gen.name g); supplier ]
  done;
  let query =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "Part"; rel = "P" };
            { Canonical.table = "Supplier"; rel = "S" };
          ];
        where =
          Expr.conj
            [
              Expr.eq (Expr.col "P" "ClassCode") (Expr.int 25);
              Expr.eq (Expr.col "P" "SupplierNo") (Expr.col "S" "SupplierNo");
            ];
        group_by = [ Colref.make "S" "SupplierNo"; Colref.make "S" "Name" ];
        select_cols = [ Colref.make "S" "SupplierNo"; Colref.make "S" "Name" ];
        select_aggs =
          [ Agg.count (Colref.make "" "part_count") (Expr.col "P" "PartNo") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [];
      }
  in
  { db; query }
