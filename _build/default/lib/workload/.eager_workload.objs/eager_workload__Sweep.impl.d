lib/workload/sweep.ml: Canonical Database Eager_core Eager_storage Employee_dept List
