lib/workload/gen.mli:
