lib/workload/parts.mli: Canonical Database Eager_core Eager_storage
