lib/workload/sales.ml: Agg Canonical Colref Constr Ctype Database Eager_algebra Eager_catalog Eager_core Eager_expr Eager_schema Eager_storage Eager_value Expr Gen Option Table_def Value
