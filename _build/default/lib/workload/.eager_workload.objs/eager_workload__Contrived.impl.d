lib/workload/contrived.ml: Agg Canonical Colref Constr Ctype Database Eager_algebra Eager_catalog Eager_core Eager_expr Eager_schema Eager_storage Eager_value Expr Gen Table_def Value
