lib/workload/gen.ml: Array Buffer Random String
