lib/workload/printers.mli: Canonical Database Eager_core Eager_storage
