lib/workload/sales.mli: Canonical Database Eager_core Eager_storage
