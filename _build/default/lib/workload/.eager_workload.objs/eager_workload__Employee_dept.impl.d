lib/workload/employee_dept.ml: Agg Canonical Colref Constr Ctype Database Eager_algebra Eager_catalog Eager_core Eager_expr Eager_schema Eager_storage Eager_value Expr Gen Printf Table_def Value
