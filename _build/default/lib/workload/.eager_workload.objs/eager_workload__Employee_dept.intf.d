lib/workload/employee_dept.mli: Canonical Database Eager_core Eager_storage
