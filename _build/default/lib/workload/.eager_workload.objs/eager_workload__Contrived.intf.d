lib/workload/contrived.mli: Canonical Database Eager_core Eager_storage
