lib/workload/sweep.mli: Canonical Database Eager_core Eager_storage
