open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

type t = { db : Database.t; query : Canonical.t }

let machine_name i =
  if i = 0 then "dragon"
  else Printf.sprintf "host%02d" i

let setup ?(seed = 7) ?(users = 500) ?(machines = 8) ?(printers = 40)
    ?(auths_per_user = 4) () =
  let g = Gen.make seed in
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "UserAccount"
       [
         { Table_def.cname = "UserId"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Machine"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "UserName"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "UserId"; "Machine" ] ]);
  Database.create_table db
    (Table_def.make "Printer"
       [
         { Table_def.cname = "PNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Speed"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Make"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "PNo" ] ]);
  Database.create_table db
    (Table_def.make "PrinterAuth"
       [
         { Table_def.cname = "UserId"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Machine"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "PNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Usage"; ctype = Ctype.Int; domain = None };
       ]
       [
         Constr.Primary_key [ "UserId"; "Machine"; "PNo" ];
         Constr.Foreign_key
           { cols = [ "PNo" ]; ref_table = "Printer"; ref_cols = [ "PNo" ] };
       ]);
  for p = 1 to printers do
    Database.insert_exn db "Printer"
      [
        Value.Int p;
        Value.Int (4 + Gen.int g 60);
        Value.Str (Gen.pick g [| "HP"; "Canon"; "Epson"; "Brother" |]);
      ]
  done;
  for u = 1 to users do
    let machine = machine_name (Gen.int g machines) in
    Database.insert_exn db "UserAccount"
      [ Value.Int u; Value.Str machine; Value.Str (Gen.name g) ];
    (* a user is authorised on a few distinct printers *)
    let n_auth = 1 + Gen.int g auths_per_user in
    let chosen = Hashtbl.create 4 in
    let granted = ref 0 in
    while !granted < n_auth do
      let p = 1 + Gen.int g printers in
      if not (Hashtbl.mem chosen p) then begin
        Hashtbl.add chosen p ();
        incr granted;
        Database.insert_exn db "PrinterAuth"
          [ Value.Int u; Value.Str machine; Value.Int p; Value.Int (Gen.int g 5000) ]
      end
    done
  done;
  let query =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "UserAccount"; rel = "U" };
            { Canonical.table = "PrinterAuth"; rel = "A" };
            { Canonical.table = "Printer"; rel = "P" };
          ];
        where =
          Expr.conj
            [
              Expr.eq (Expr.col "U" "UserId") (Expr.col "A" "UserId");
              Expr.eq (Expr.col "U" "Machine") (Expr.col "A" "Machine");
              Expr.eq (Expr.col "A" "PNo") (Expr.col "P" "PNo");
              Expr.eq (Expr.col "U" "Machine") (Expr.str "dragon");
            ];
        group_by = [ Colref.make "U" "UserId"; Colref.make "U" "UserName" ];
        select_cols = [ Colref.make "U" "UserId"; Colref.make "U" "UserName" ];
        select_aggs =
          [
            Agg.sum (Colref.make "" "TotUsage") (Expr.col "A" "Usage");
            Agg.max_ (Colref.make "" "MaxSpeed") (Expr.col "P" "Speed");
            Agg.min_ (Colref.make "" "MinSpeed") (Expr.col "P" "Speed");
          ];
        select_distinct = false;
        select_having = None;
        r1_hint = [];
      }
  in
  { db; query }
