(** Example 3 / Example 5 workload: the printer-accounting database.

    {v
    UserAccount(UserId, Machine, UserName)        PK (UserId, Machine)
    PrinterAuth(UserId, Machine, PNo, Usage)      PK (UserId, Machine, PNo)
    Printer(PNo, Speed, Make)                     PK PNo
    v}

    The query (paper Section 6.3): for each user on machine 'dragon', the
    UserId, UserName, total printer usage and the max/min speed of printers
    accessible to the user.  The R1 side is [{A, P}] (it carries the
    aggregation columns), R2 is [{U}]. *)

open Eager_storage
open Eager_core

type t = { db : Database.t; query : Canonical.t }

val setup :
  ?seed:int ->
  ?users:int ->
  ?machines:int ->
  ?printers:int ->
  ?auths_per_user:int ->
  unit ->
  t

val machine_name : int -> string
(** [machine_name 0 = "dragon"] — the machine the query filters on. *)
