(** Deterministic data-generation helpers (seeded, reproducible). *)

type t

val make : int -> t
(** Seeded generator. *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n). *)

val pick : t -> 'a array -> 'a
val name : t -> string
(** A pronounceable pseudo-name. *)

val bool : t -> float -> bool
(** [bool g p] is true with probability [p]. *)
