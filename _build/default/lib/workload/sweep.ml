open Eager_storage
open Eager_core

type point = { db : Database.t; query : Canonical.t; knob : float }

let by_fanin ?(seed = 5) ?(employees = 10_000) ~departments () =
  List.map
    (fun d ->
      let w = Employee_dept.setup ~seed ~employees ~departments:d () in
      {
        db = w.Employee_dept.db;
        query = w.Employee_dept.query;
        knob = float_of_int employees /. float_of_int d;
      })
    departments

let by_selectivity ?(seed = 5) ?(employees = 10_000) ?(departments = 50)
    ~fractions () =
  List.map
    (fun f ->
      let w =
        Employee_dept.setup ~seed ~employees ~departments
          ~null_dept_fraction:(1.0 -. f) ()
      in
      { db = w.Employee_dept.db; query = w.Employee_dept.query; knob = f })
    fractions
