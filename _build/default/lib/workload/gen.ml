type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9 |]
let int g n = if n <= 0 then 0 else Random.State.int g n
let pick g arr = arr.(int g (Array.length arr))

let syllables =
  [| "ka"; "ro"; "mi"; "ta"; "ve"; "lu"; "san"; "der"; "el"; "ni"; "go"; "ra" |]

let name g =
  let n = 2 + int g 2 in
  let b = Buffer.create 8 in
  for i = 0 to n - 1 do
    let s = pick g syllables in
    Buffer.add_string b (if i = 0 then String.capitalize_ascii s else s)
  done;
  Buffer.contents b

let bool g p = Random.State.float g 1.0 < p
