(** Parameterised workloads for the Section 7 trade-off sweeps.

    Both are Employee/Department-shaped: the knob controls where the
    transformation's benefit comes from.

    - {!by_fanin}: fix the employee count, vary the number of departments.
      Few departments = many rows per group = the eager group-by shrinks
      the join input massively; many departments = little shrinkage.
    - {!by_selectivity}: fix both table sizes, vary the fraction of
      employees that join at all (the rest carry a NULL foreign key).  Low
      selectivity favours the lazy plan — the join does the filtering for
      free; the eager plan still groups everything. *)

open Eager_storage
open Eager_core

type point = { db : Database.t; query : Canonical.t; knob : float }

val by_fanin :
  ?seed:int -> ?employees:int -> departments:int list -> unit -> point list
(** [knob] is the rows-per-group ratio (employees / departments). *)

val by_selectivity :
  ?seed:int ->
  ?employees:int ->
  ?departments:int ->
  fractions:float list ->
  unit ->
  point list
(** [knob] is the matching fraction. *)
