(** Example 2 workload: Part ⋈ Supplier — derived key dependencies.

    {v
    Part(ClassCode, PartNo, PartName, SupplierNo)   PK (ClassCode, PartNo)
    Supplier(SupplierNo, Name, Address)             PK SupplierNo
    v}

    The paper uses this schema to illustrate {i derived} dependencies: in
    the join [σ(ClassCode = 25 ∧ P.SupplierNo = S.SupplierNo)](Part ×
    Supplier), [PartNo] is a key and [Name] is functionally dependent on
    [SupplierNo].  The canonical query aggregates parts per supplier. *)

open Eager_storage
open Eager_core

type t = { db : Database.t; query : Canonical.t }

val setup :
  ?seed:int -> ?parts:int -> ?suppliers:int -> ?classes:int -> unit -> t
(** Query: per supplier, count the class-25 parts it supplies.
    Some parts have a NULL SupplierNo (they join nothing). *)
