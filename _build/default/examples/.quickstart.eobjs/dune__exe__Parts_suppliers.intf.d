examples/parts_suppliers.mli:
