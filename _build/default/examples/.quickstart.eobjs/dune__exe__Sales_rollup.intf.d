examples/sales_rollup.mli:
