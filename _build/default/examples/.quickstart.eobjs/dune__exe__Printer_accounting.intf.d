examples/printer_accounting.mli:
