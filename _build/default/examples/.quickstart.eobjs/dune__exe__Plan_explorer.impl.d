examples/plan_explorer.ml: Array Contrived Eager_core Eager_exec Eager_opt Eager_workload Employee_dept Exec List Option Planner Plans Printf Sweep Sys
