examples/quickstart.mli:
