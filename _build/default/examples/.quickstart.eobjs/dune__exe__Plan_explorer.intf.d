examples/plan_explorer.mli:
