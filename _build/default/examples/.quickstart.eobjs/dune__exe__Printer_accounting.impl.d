examples/printer_accounting.ml: Canonical Eager_algebra Eager_core Eager_exec Eager_opt Eager_schema Eager_workload Exec Format List Planner Plans Printers Printf Reverse String Testfd
