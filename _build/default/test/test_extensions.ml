(* Tests for the two extensions beyond the paper's core:

   - column substitution (Section 9 "concluding remarks"): equivalent
     queries obtained by replacing equated columns can become
     canonicalisable/transformable;
   - HAVING (the paper's stated future work): the filter commutes with the
     group↔row bijection established by FD1/FD2, so E1 ≡ E2 carries over. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_exec
open Eager_core
open Eager_parser

let cr = Colref.make
let i n = Value.Int n

let coldef name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

let emp_db () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Department"
       [ coldef "DeptID" Ctype.Int; coldef "Name" Ctype.String ]
       [ Constr.Primary_key [ "DeptID" ] ]);
  Database.create_table db
    (Table_def.make "Employee"
       [ coldef "EmpID" Ctype.Int; coldef "DeptID" Ctype.Int;
         coldef "Sal" Ctype.Int ]
       [ Constr.Primary_key [ "EmpID" ] ]);
  Database.load db "Department"
    [ [ i 1; Value.Str "R" ]; [ i 2; Value.Str "S" ]; [ i 3; Value.Str "T" ] ];
  Database.load db "Employee"
    [ [ i 1; i 1; i 100 ]; [ i 2; i 1; i 250 ]; [ i 3; i 2; i 50 ];
      [ i 4; i 2; i 75 ]; [ i 5; Value.Null; i 10 ] ];
  db

let base_input ?(aggs = [ Agg.count (cr "" "n") (Expr.col "E" "EmpID") ])
    ?(group_by = [ cr "D" "DeptID" ]) ?(select_cols = [ cr "D" "DeptID" ])
    ?having () : Canonical.input =
  {
    Canonical.sources =
      [
        { Canonical.table = "Employee"; rel = "E" };
        { Canonical.table = "Department"; rel = "D" };
      ];
    where = Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID");
    group_by;
    select_cols;
    select_aggs = aggs;
    select_distinct = false;
    select_having = having;
    r1_hint = [];
  }

(* straightforward plan for an input that may not canonicalise: join
   everything, group, filter, project — used as the reference result *)
let reference_plan db (input : Canonical.input) =
  let tree =
    Plans.join_tree db input.Canonical.sources
      (Expr.conjuncts input.Canonical.where)
  in
  let grouped =
    Plan.group ~by:input.Canonical.group_by ~aggs:input.Canonical.select_aggs
      tree
  in
  let filtered =
    match input.Canonical.select_having with
    | None -> grouped
    | Some h -> Plan.select h grouped
  in
  Plan.project ~dedup:input.Canonical.select_distinct
    (input.Canonical.select_cols
    @ List.map (fun (a : Agg.t) -> a.Agg.name) input.Canonical.select_aggs)
    filtered

(* ------------------------------------------------------------------ *)
(* column substitution *)

let test_variants_shape () =
  let input = base_input () in
  let vs = Substitute.variants input in
  (* original + substitutions; deduplicated *)
  Alcotest.(check bool) "original first" true
    (List.hd vs == input || List.hd vs = input);
  Alcotest.(check bool) "more than one variant" true (List.length vs > 1);
  (* no duplicates *)
  let rendered =
    List.map
      (fun (v : Canonical.input) ->
        ( List.map Colref.to_string v.Canonical.group_by,
          List.map Agg.to_string v.Canonical.select_aggs ))
      vs
  in
  Alcotest.(check int) "deduplicated" (List.length rendered)
    (List.length (List.sort_uniq compare rendered))

let test_substitution_spanning_aggregate () =
  (* SUM(E.Sal + D.DeptID): AA spans both tables → not canonicalisable as
     written; substituting D.DeptID ↦ E.DeptID confines AA to E. *)
  let db = emp_db () in
  let input =
    base_input
      ~aggs:
        [
          Agg.sum (cr "" "s")
            (Expr.Arith (Expr.Add, Expr.col "E" "Sal", Expr.col "D" "DeptID"));
        ]
      ()
  in
  (match Canonical.of_input db input with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should not canonicalise as written");
  match Substitute.find_transformable db input with
  | Error msg -> Alcotest.fail ("substitution should rescue this query: " ^ msg)
  | Ok (q, rewritten) ->
      (* the rewritten aggregate references only E columns *)
      Alcotest.(check (list string)) "R1 = Employee" [ "E" ]
        (List.map (fun s -> s.Canonical.rel) q.Canonical.r1);
      (* and the transformed plan agrees with the reference execution of
         the rewritten query AND of a manually-verified expected result *)
      let eager_rows = Exec.run_rows db (Plans.e2 db q) in
      let ref_rows = Exec.run_rows db (reference_plan db rewritten) in
      Alcotest.(check bool) "eager = reference" true
        (Exec.multiset_equal eager_rows ref_rows);
      (* dept 1: (100+1)+(250+1)=352; dept 2: (50+2)+(75+2)=129 *)
      let sorted = List.sort compare (List.map Row.to_string eager_rows) in
      Alcotest.(check (list string)) "values" [ "(1, 352)"; "(2, 129)" ] sorted

let test_substitution_partition_flip () =
  (* COUNT(D.DeptID) puts D on the R1 side where FD2 needs a key of E —
     underivable; substituting D.DeptID ↦ E.DeptID flips the partition. *)
  let db = emp_db () in
  let input =
    base_input
      ~aggs:[ Agg.count (cr "" "n") (Expr.col "D" "DeptID") ]
      ~group_by:[ cr "E" "DeptID" ]
      ~select_cols:[ cr "E" "DeptID" ]
      ()
  in
  (* as written: canonicalises with R1 = {D} but TestFD refuses *)
  (match Canonical.of_input db input with
  | Ok q -> (
      Alcotest.(check (list string)) "R1 = D as written" [ "D" ]
        (List.map (fun s -> s.Canonical.rel) q.Canonical.r1);
      match Testfd.test db q with
      | Testfd.No _ -> ()
      | Testfd.Yes -> Alcotest.fail "should fail as written")
  | Error msg -> Alcotest.fail msg);
  match Substitute.find_transformable db input with
  | Error msg -> Alcotest.fail ("substitution should rescue this query: " ^ msg)
  | Ok (q, rewritten) ->
      Alcotest.(check (list string)) "R1 flipped to E" [ "E" ]
        (List.map (fun s -> s.Canonical.rel) q.Canonical.r1);
      let eager_rows = Exec.run_rows db (Plans.e2 db q) in
      let ref_rows = Exec.run_rows db (reference_plan db rewritten) in
      Alcotest.(check bool) "eager = reference" true
        (Exec.multiset_equal eager_rows ref_rows);
      (* ... and equals the original query's own reference execution,
         since the substitution preserves the query's meaning *)
      let orig_rows = Exec.run_rows db (reference_plan db input) in
      Alcotest.(check bool) "rewritten ≡ original" true
        (Exec.multiset_equal eager_rows orig_rows)

let test_substitution_preserves_having () =
  let input =
    base_input ~having:(Expr.Cmp (Expr.Ge, Expr.Col (cr "" "n"), Expr.int 1)) ()
  in
  List.iter
    (fun (v : Canonical.input) ->
      Alcotest.(check bool) "variant keeps HAVING" true
        (v.Canonical.select_having <> None))
    (Substitute.variants input)

let test_substitution_gives_up () =
  (* no equalities to substitute with: inequality join *)
  let db = emp_db () in
  let input =
    {
      (base_input ()) with
      Canonical.where =
        Expr.Cmp (Expr.Lt, Expr.col "E" "DeptID", Expr.col "D" "DeptID");
    }
  in
  match Substitute.find_transformable db input with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nothing to substitute; must fail"

(* randomized: whenever a substitution variant is accepted, its eager plan
   must agree with the straightforward execution of the ORIGINAL query *)
let test_substitution_randomized () =
  let st = Random.State.make [| 4242 |] in
  let found = ref 0 in
  for _ = 1 to 120 do
    let db = Database.create () in
    Database.create_table db
      (Table_def.make "Department"
         [ coldef "DeptID" Ctype.Int; coldef "Name" Ctype.String ]
         [ Constr.Primary_key [ "DeptID" ] ]);
    Database.create_table db
      (Table_def.make "Employee"
         [ coldef "EmpID" Ctype.Int; coldef "DeptID" Ctype.Int;
           coldef "Sal" Ctype.Int ]
         [ Constr.Primary_key [ "EmpID" ] ]);
    for d = 1 to 3 do
      Database.insert_exn db "Department"
        [ i d; Value.Str (String.make 1 (Char.chr (64 + d))) ]
    done;
    for e = 1 to 5 + Random.State.int st 15 do
      let dept =
        if Random.State.int st 6 = 0 then Value.Null
        else i (1 + Random.State.int st 3)
      in
      Database.insert_exn db "Employee" [ i e; dept; i (Random.State.int st 200) ]
    done;
    (* two problematic families: a spanning aggregate, or an aggregate on
       the "wrong" side *)
    let input =
      if Random.State.bool st then
        base_input
          ~aggs:
            [
              Agg.sum (cr "" "s")
                (Expr.Arith
                   (Expr.Add, Expr.col "E" "Sal", Expr.col "D" "DeptID"));
            ]
          ()
      else
        base_input
          ~aggs:[ Agg.count (cr "" "n") (Expr.col "D" "DeptID") ]
          ~group_by:[ cr "E" "DeptID" ]
          ~select_cols:[ cr "E" "DeptID" ]
          ()
    in
    match Substitute.find_transformable db input with
    | Error _ -> ()
    | Ok (q, _) ->
        incr found;
        let eager = Exec.run_rows db (Plans.e2 db q) in
        let reference = Exec.run_rows db (reference_plan db input) in
        if not (Exec.multiset_equal eager reference) then
          Alcotest.fail
            (Printf.sprintf "substitution changed the answer:\n%s"
               (Format.asprintf "%a" Canonical.pp q))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "substitutions actually fired (%d)" !found)
    true (!found > 60)

(* ------------------------------------------------------------------ *)
(* HAVING *)

let test_having_canonicalisation () =
  let db = emp_db () in
  (* valid: references a grouping column and an aggregate output *)
  let ok_input =
    base_input
      ~having:
        (Expr.And
           ( Expr.Cmp (Expr.Ge, Expr.Col (cr "" "n"), Expr.int 2),
             Expr.Cmp (Expr.Ge, Expr.Col (cr "D" "DeptID"), Expr.int 1) ))
      ()
  in
  (match Canonical.of_input db ok_input with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (* invalid: references a non-grouping column *)
  let bad_input =
    base_input ~having:(Expr.Cmp (Expr.Gt, Expr.col "E" "Sal", Expr.int 0)) ()
  in
  match Canonical.of_input db bad_input with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "HAVING over a non-grouping column must be rejected"

let test_having_equivalence () =
  let db = emp_db () in
  let q =
    Canonical.of_input_exn db
      (base_input
         ~having:(Expr.Cmp (Expr.Ge, Expr.Col (cr "" "n"), Expr.int 2))
         ())
  in
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "E1 ≡ E2 with HAVING" true (Theorem.equivalent db q);
  (* both departments have 2 employees; HAVING n >= 2 keeps both, n >= 3
     keeps none — check actual filtering happens *)
  let rows = Exec.run_rows db (Plans.e2 db q) in
  Alcotest.(check int) "2 groups pass" 2 (List.length rows);
  let q3 =
    Canonical.of_input_exn db
      (base_input
         ~having:(Expr.Cmp (Expr.Ge, Expr.Col (cr "" "n"), Expr.int 3))
         ())
  in
  Alcotest.(check int) "0 groups pass" 0
    (List.length (Exec.run_rows db (Plans.e2 db q3)));
  Alcotest.(check bool) "still equivalent" true (Theorem.equivalent db q3)

let test_having_through_sql () =
  let db = Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE Department (DeptID INTEGER, Name VARCHAR(30), PRIMARY KEY (DeptID));
         CREATE TABLE Employee (EmpID INTEGER, DeptID INTEGER, PRIMARY KEY (EmpID),
            FOREIGN KEY (DeptID) REFERENCES Department (DeptID));
         INSERT INTO Department VALUES (1, 'R'), (2, 'S'), (3, 'T');
         INSERT INTO Employee VALUES (1, 1), (2, 1), (3, 1), (4, 2), (5, NULL);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let bind sql =
    match Binder.bind_select db (Parser.parse_select sql) with
    | Ok (Binder.Grouped input) -> input
    | Ok _ -> Alcotest.fail "expected grouped"
    | Error msg -> Alcotest.fail msg
  in
  (* via the alias *)
  let input1 =
    bind
      "SELECT D.DeptID, COUNT(E.EmpID) AS n FROM Employee E, Department D \
       WHERE E.DeptID = D.DeptID GROUP BY D.DeptID HAVING n >= 2"
  in
  (* via repeating the aggregate expression *)
  let input2 =
    bind
      "SELECT D.DeptID, COUNT(E.EmpID) AS n FROM Employee E, Department D \
       WHERE E.DeptID = D.DeptID GROUP BY D.DeptID HAVING COUNT(E.EmpID) >= 2"
  in
  List.iter
    (fun input ->
      let q = Canonical.of_input_exn db input in
      (match Testfd.test db q with
      | Testfd.Yes -> ()
      | Testfd.No r -> Alcotest.fail r);
      let rows = Exec.run_rows db (Plans.e2 db q) in
      Alcotest.(check int) "only dept 1 passes" 1 (List.length rows);
      Alcotest.(check bool) "equivalent" true (Theorem.equivalent db q))
    [ input1; input2 ];
  (* an aggregate in HAVING that is not in the SELECT list is rejected *)
  match
    Binder.bind_select db
      (Parser.parse_select
         "SELECT D.DeptID, COUNT(E.EmpID) AS n FROM Employee E, Department D \
          WHERE E.DeptID = D.DeptID GROUP BY D.DeptID HAVING SUM(E.EmpID) > 3")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "HAVING aggregate missing from SELECT must be rejected"

(* randomized: FD1 ∧ FD2 ⇒ equivalence survives a HAVING filter *)
let test_having_randomized () =
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 200 do
    let db = emp_db () in
    (* random extra rows to vary group sizes *)
    for k = 6 to 6 + Random.State.int st 20 do
      ignore
        (Database.insert db "Employee"
           [
             i k;
             (if Random.State.int st 5 = 0 then Value.Null
              else i (1 + Random.State.int st 3));
             i (Random.State.int st 300);
           ])
    done;
    let threshold = Random.State.int st 5 in
    let q =
      Canonical.of_input_exn db
        (base_input
           ~having:(Expr.Cmp (Expr.Ge, Expr.Col (cr "" "n"), Expr.int threshold))
           ())
    in
    let chk = Theorem.check db q in
    if chk.Theorem.fd1 && chk.Theorem.fd2 then
      Alcotest.(check bool) "having-equivalence" true (Theorem.equivalent db q)
  done

let () =
  Alcotest.run "extensions"
    [
      ( "substitution",
        [
          Alcotest.test_case "variants" `Quick test_variants_shape;
          Alcotest.test_case "spanning aggregate rescued" `Quick
            test_substitution_spanning_aggregate;
          Alcotest.test_case "partition flip rescued" `Quick
            test_substitution_partition_flip;
          Alcotest.test_case "gives up cleanly" `Quick test_substitution_gives_up;
          Alcotest.test_case "randomized equivalence" `Slow
            test_substitution_randomized;
          Alcotest.test_case "HAVING preserved in variants" `Quick
            test_substitution_preserves_having;
        ] );
      ( "having",
        [
          Alcotest.test_case "canonicalisation" `Quick
            test_having_canonicalisation;
          Alcotest.test_case "equivalence" `Quick test_having_equivalence;
          Alcotest.test_case "through SQL" `Quick test_having_through_sql;
          Alcotest.test_case "randomized" `Slow test_having_randomized;
        ] );
    ]
