(* Core tests: the canonical query class (Section 3), the E1/E2 plan
   builders, algorithm TestFD on the paper's own examples (Sections 6.3, 8),
   the exact instance-level Main-Theorem conditions, and the reverse
   transformation. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

let cr = Colref.make
let i n = Value.Int n

let coldef name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

(* ------------------------------------------------------------------ *)
(* The printer database of Example 3, tiny instance *)

let printer_db () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "UserAccount"
       [ coldef "UserId" Ctype.Int; coldef "Machine" Ctype.String;
         coldef "UserName" Ctype.String ]
       [ Constr.Primary_key [ "UserId"; "Machine" ] ]);
  Database.create_table db
    (Table_def.make "Printer"
       [ coldef "PNo" Ctype.Int; coldef "Speed" Ctype.Int;
         coldef "Make" Ctype.String ]
       [ Constr.Primary_key [ "PNo" ] ]);
  Database.create_table db
    (Table_def.make "PrinterAuth"
       [ coldef "UserId" Ctype.Int; coldef "Machine" Ctype.String;
         coldef "PNo" Ctype.Int; coldef "Usage" Ctype.Int ]
       [ Constr.Primary_key [ "UserId"; "Machine"; "PNo" ] ]);
  Database.load db "UserAccount"
    [ [ i 1; Value.Str "dragon"; Value.Str "ann" ];
      [ i 2; Value.Str "dragon"; Value.Str "bob" ];
      [ i 1; Value.Str "tiger"; Value.Str "ann2" ] ];
  Database.load db "Printer"
    [ [ i 1; i 10; Value.Str "HP" ]; [ i 2; i 30; Value.Str "Canon" ] ];
  Database.load db "PrinterAuth"
    [ [ i 1; Value.Str "dragon"; i 1; i 100 ];
      [ i 1; Value.Str "dragon"; i 2; i 50 ];
      [ i 2; Value.Str "dragon"; i 2; i 70 ];
      [ i 1; Value.Str "tiger"; i 1; i 10 ] ];
  db

let printer_query db : Canonical.t =
  Canonical.of_input_exn db
    {
      Canonical.sources =
        [
          { Canonical.table = "UserAccount"; rel = "U" };
          { Canonical.table = "PrinterAuth"; rel = "A" };
          { Canonical.table = "Printer"; rel = "P" };
        ];
      where =
        Expr.conj
          [
            Expr.eq (Expr.col "U" "UserId") (Expr.col "A" "UserId");
            Expr.eq (Expr.col "U" "Machine") (Expr.col "A" "Machine");
            Expr.eq (Expr.col "A" "PNo") (Expr.col "P" "PNo");
            Expr.eq (Expr.col "U" "Machine") (Expr.str "dragon");
          ];
      group_by = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_cols = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_aggs =
        [
          Agg.sum (cr "" "TotUsage") (Expr.col "A" "Usage");
          Agg.max_ (cr "" "MaxSpeed") (Expr.col "P" "Speed");
          Agg.min_ (cr "" "MinSpeed") (Expr.col "P" "Speed");
        ];
      select_distinct = false;
      select_having = None;
      r1_hint = [];
    }

(* ------------------------------------------------------------------ *)
(* Employee / Department (Example 1), tiny instance *)

let emp_db () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Department"
       [ coldef "DeptID" Ctype.Int; coldef "Name" Ctype.String ]
       [ Constr.Primary_key [ "DeptID" ] ]);
  Database.create_table db
    (Table_def.make "Employee"
       [ coldef "EmpID" Ctype.Int; coldef "DeptID" Ctype.Int ]
       [ Constr.Primary_key [ "EmpID" ] ]);
  Database.load db "Department"
    [ [ i 1; Value.Str "R" ]; [ i 2; Value.Str "S" ]; [ i 3; Value.Str "E" ] ];
  Database.load db "Employee"
    [ [ i 1; i 1 ]; [ i 2; i 1 ]; [ i 3; i 2 ]; [ i 4; Value.Null ] ];
  db

let emp_input ?(group_by = [ cr "D" "DeptID"; cr "D" "Name" ])
    ?(select_cols = [ cr "D" "DeptID"; cr "D" "Name" ]) () : Canonical.input =
  {
    Canonical.sources =
      [
        { Canonical.table = "Employee"; rel = "E" };
        { Canonical.table = "Department"; rel = "D" };
      ];
    where = Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID");
    group_by;
    select_cols;
    select_aggs = [ Agg.count (cr "" "n") (Expr.col "E" "EmpID") ];
    select_distinct = false;
    select_having = None;
    r1_hint = [];
  }

(* ------------------------------------------------------------------ *)
(* canonicalization *)

let test_canonical_partition_ex1 () =
  let db = emp_db () in
  let q = Canonical.of_input_exn db (emp_input ()) in
  Alcotest.(check (list string)) "R1 = Employee" [ "E" ]
    (List.map (fun s -> s.Canonical.rel) q.Canonical.r1);
  Alcotest.(check (list string)) "R2 = Department" [ "D" ]
    (List.map (fun s -> s.Canonical.rel) q.Canonical.r2);
  Alcotest.(check int) "C0 has the join predicate" 1 (List.length q.Canonical.c0);
  Alcotest.(check int) "C1 empty" 0 (List.length q.Canonical.c1);
  Alcotest.(check (list string)) "GA1+ = E.DeptID" [ "E.DeptID" ]
    (List.map Colref.to_string (Canonical.ga1_plus q));
  Alcotest.(check (list string)) "GA2+ = D.DeptID, D.Name"
    [ "D.DeptID"; "D.Name" ]
    (List.map Colref.to_string (Canonical.ga2_plus q))

let test_canonical_partition_ex3 () =
  (* the paper: R1 = (A, P), R2 = (U); C1 = A.PNo=P.PNo; C2 = Machine='dragon' *)
  let db = printer_db () in
  let q = printer_query db in
  Alcotest.(check (list string)) "R1 = A, P" [ "A"; "P" ]
    (List.sort compare (List.map (fun s -> s.Canonical.rel) q.Canonical.r1));
  Alcotest.(check (list string)) "R2 = U" [ "U" ]
    (List.map (fun s -> s.Canonical.rel) q.Canonical.r2);
  Alcotest.(check int) "C1: A.PNo = P.PNo" 1 (List.length q.Canonical.c1);
  Alcotest.(check int) "C0: two join predicates" 2 (List.length q.Canonical.c0);
  Alcotest.(check int) "C2: machine filter" 1 (List.length q.Canonical.c2);
  Alcotest.(check (list string)) "GA1+ = A.UserId, A.Machine"
    [ "A.Machine"; "A.UserId" ]
    (List.sort compare (List.map Colref.to_string (Canonical.ga1_plus q)));
  Alcotest.(check (list string)) "GA2+ = U.UserId, U.UserName, U.Machine"
    [ "U.Machine"; "U.UserId"; "U.UserName" ]
    (List.sort compare (List.map Colref.to_string (Canonical.ga2_plus q)))

let test_canonical_errors () =
  let db = emp_db () in
  let err input =
    match Canonical.of_input db input with
    | Ok _ -> Alcotest.fail "expected canonicalization error"
    | Error msg -> msg
  in
  (* no grouping columns *)
  ignore (err (emp_input ~group_by:[] ~select_cols:[] ()));
  (* selection column not a grouping column *)
  ignore (err (emp_input ~select_cols:[ cr "D" "DeptID"; cr "E" "DeptID" ] ()));
  (* unknown grouping column *)
  ignore (err (emp_input ~group_by:[ cr "X" "y" ] ()));
  (* aggregation columns on every table: no partition *)
  let bad =
    {
      (emp_input ()) with
      Canonical.select_aggs =
        [
          Agg.count (cr "" "n1") (Expr.col "E" "EmpID");
          Agg.count (cr "" "n2") (Expr.col "D" "Name");
        ];
    }
  in
  ignore (err bad);
  (* duplicate range variables *)
  let dup =
    {
      (emp_input ()) with
      Canonical.sources =
        [
          { Canonical.table = "Employee"; rel = "E" };
          { Canonical.table = "Department"; rel = "E" };
        ];
    }
  in
  ignore (err dup)

let test_r1_hint_for_count_star () =
  let db = emp_db () in
  let input =
    {
      (emp_input ()) with
      Canonical.select_aggs = [ Agg.count_star (cr "" "n") ];
      r1_hint = [ "E" ];
    }
  in
  let q = Canonical.of_input_exn db input in
  Alcotest.(check (list string)) "hint forces E to R1" [ "E" ]
    (List.map (fun s -> s.Canonical.rel) q.Canonical.r1)

(* ------------------------------------------------------------------ *)
(* plans *)

let test_plan_shapes () =
  let db = emp_db () in
  let q = Canonical.of_input_exn db (emp_input ()) in
  let e1 = Plans.e1 db q and e2 = Plans.e2 db q in
  (* E1: Project over Group over Join *)
  (match e1 with
  | Plan.Project { input = Plan.Group { input = Plan.Join _; by; _ }; _ } ->
      (* Example 1 groups only on the D side: GA1 = ∅, GA2 = {DeptID, Name} *)
      Alcotest.(check int) "E1 groups on GA1∪GA2" 2 (List.length by)
  | _ -> Alcotest.fail "unexpected E1 shape");
  (* E2: Project over Join over (Group, Project) *)
  (match e2 with
  | Plan.Project
      {
        input =
          Plan.Join { left = Plan.Group { by; _ }; right = Plan.Project _; _ };
        _;
      } ->
      Alcotest.(check (list string)) "E2 groups on GA1+" [ "E.DeptID" ]
        (List.map Colref.to_string by)
  | _ -> Alcotest.fail "unexpected E2 shape");
  (* both have the same output schema *)
  Alcotest.(check string) "same output schema"
    (Format.asprintf "%a" Schema.pp (Plan.schema_of e1))
    (Format.asprintf "%a" Schema.pp (Plan.schema_of e2))

let test_join_tree_multi_table_side () =
  let db = printer_db () in
  let q = printer_query db in
  (* side1 = A ⋈ P with the C1 conjunct as the join predicate *)
  match Plans.side1 db q with
  | Plan.Join { pred; _ } ->
      Alcotest.(check string) "C1 becomes the side join" "A.PNo = P.PNo"
        (Expr.to_string pred)
  | _ -> Alcotest.fail "expected a join tree on the R1 side"

(* ------------------------------------------------------------------ *)
(* TestFD *)

let test_testfd_ex1_yes () =
  let db = emp_db () in
  let q = Canonical.of_input_exn db (emp_input ()) in
  match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("Example 1 must be transformable: " ^ r)

let test_testfd_ex3_yes_with_trace () =
  let db = printer_db () in
  let q = printer_query db in
  let verdict, trace = Testfd.test_traced db q in
  (match verdict with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("Example 3 must be transformable: " ^ r));
  Alcotest.(check int) "single disjunct" 1 trace.Testfd.disjuncts;
  match trace.Testfd.closures with
  | [ (cols, r2_ok, ga1_ok) ] ->
      Alcotest.(check bool) "key of U in closure" true r2_ok;
      Alcotest.(check bool) "GA1+ in closure" true ga1_ok;
      (* the paper's Step (c): closure contains A.UserId, A.Machine,
         U.UserName, U.Machine, U.UserId *)
      List.iter
        (fun c ->
          Alcotest.(check bool) (c ^ " in closure") true (List.mem c cols))
        [ "A.UserId"; "A.Machine"; "U.UserName"; "U.Machine"; "U.UserId" ]
  | _ -> Alcotest.fail "expected one closure record"

let test_testfd_no_nonkey_grouping () =
  (* group by D.Name (not a key): FD2 not derivable *)
  let db = emp_db () in
  let q =
    Canonical.of_input_exn db
      (emp_input ~group_by:[ cr "D" "Name" ] ~select_cols:[ cr "D" "Name" ] ())
  in
  match Testfd.test db q with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "grouping on a non-key must be rejected"

let test_testfd_no_on_inequality_join () =
  let db = emp_db () in
  let input =
    {
      (emp_input ()) with
      Canonical.where =
        Expr.Cmp (Expr.Le, Expr.col "E" "DeptID", Expr.col "D" "DeptID");
    }
  in
  let q = Canonical.of_input_exn db input in
  match Testfd.test db q with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "inequality join must be rejected"

let test_testfd_strict_vs_relaxed () =
  (* no WHERE at all, but GA2 ⊇ key(Department): the relaxed mode can still
     derive FD2 from the key constraint; the paper's literal algorithm
     (strict) answers NO because no equality conditions remain. *)
  let db = emp_db () in
  let input =
    { (emp_input ()) with Canonical.where = Expr.etrue }
  in
  let q = Canonical.of_input_exn db input in
  (match Testfd.test ~strict:false db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("relaxed mode should accept: " ^ r));
  match Testfd.test ~strict:true db q with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "strict mode must refuse the empty condition"

let test_testfd_disjunction () =
  (* (E.DeptID = D.DeptID) AND (D.DeptID = 1 OR D.DeptID = 2):
     both disjuncts keep the key-equality, so YES *)
  let db = emp_db () in
  let input =
    {
      (emp_input ()) with
      Canonical.where =
        Expr.And
          ( Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID"),
            Expr.Or
              ( Expr.eq (Expr.col "D" "DeptID") (Expr.int 1),
                Expr.eq (Expr.col "D" "DeptID") (Expr.int 2) ) );
    }
  in
  let q = Canonical.of_input_exn db input in
  let verdict, trace = Testfd.test_traced db q in
  (match verdict with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("disjunction case should pass: " ^ r));
  Alcotest.(check int) "two disjuncts examined" 2 trace.Testfd.disjuncts

let test_testfd_host_variable () =
  (* Machine = :m — host variables count as constants (Type 1).  The query
     is Example 3 with the literal 'dragon' replaced by a parameter; the
     aggregates must stay as in the paper so that both A and P remain on
     the R1 side. *)
  let db = printer_db () in
  let input =
    {
      Canonical.sources =
        [
          { Canonical.table = "UserAccount"; rel = "U" };
          { Canonical.table = "PrinterAuth"; rel = "A" };
          { Canonical.table = "Printer"; rel = "P" };
        ];
      Canonical.where =
        Expr.conj
          [
            Expr.eq (Expr.col "U" "UserId") (Expr.col "A" "UserId");
            Expr.eq (Expr.col "U" "Machine") (Expr.col "A" "Machine");
            Expr.eq (Expr.col "A" "PNo") (Expr.col "P" "PNo");
            Expr.eq (Expr.col "U" "Machine") (Expr.Param "m");
          ];
      group_by = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_cols = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_aggs =
        [
          Agg.sum (cr "" "TotUsage") (Expr.col "A" "Usage");
          Agg.max_ (cr "" "MaxSpeed") (Expr.col "P" "Speed");
        ];
      select_distinct = false;
      select_having = None;
      r1_hint = [];
    }
  in
  let q = Canonical.of_input_exn db input in
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("host variable should work: " ^ r));
  (* and it executes correctly once the parameter is supplied *)
  let params name = if name = "m" then Value.Str "dragon" else Value.Null in
  Alcotest.(check bool) "parameterised query equivalent" true
    (Theorem.equivalent ~params db q)

(* Without the printer-side aggregates the partition changes (P moves to
   R2), GA1+ gains A.PNo, and FD1 genuinely fails: TestFD must say NO. *)
let test_testfd_partition_sensitivity () =
  let db = printer_db () in
  let input =
    {
      Canonical.sources =
        [
          { Canonical.table = "UserAccount"; rel = "U" };
          { Canonical.table = "PrinterAuth"; rel = "A" };
          { Canonical.table = "Printer"; rel = "P" };
        ];
      Canonical.where =
        Expr.conj
          [
            Expr.eq (Expr.col "U" "UserId") (Expr.col "A" "UserId");
            Expr.eq (Expr.col "U" "Machine") (Expr.col "A" "Machine");
            Expr.eq (Expr.col "A" "PNo") (Expr.col "P" "PNo");
          ];
      group_by = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_cols = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_aggs = [ Agg.sum (cr "" "TotUsage") (Expr.col "A" "Usage") ];
      select_distinct = false;
      select_having = None;
      r1_hint = [];
    }
  in
  let q = Canonical.of_input_exn db input in
  Alcotest.(check (list string)) "P lands on R2" [ "P"; "U" ]
    (List.sort compare (List.map (fun s -> s.Canonical.rel) q.Canonical.r2));
  match Testfd.test db q with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "FD1 is not derivable here; must answer NO"

(* Regression: a nullable UNIQUE key must NOT be trusted as a key
   dependency.  SQL2 enforces UNIQUE with "NULL ≠ NULL", so two rows that
   are =ⁿ-equivalent on the key (both NULL) may coexist and differ
   elsewhere — the paper's Section 4.3 key dependency fails for such keys,
   and TestFD built on it would wrongly answer YES (there is a concrete
   E1 ≠ E2 instance below). *)
let test_nullable_unique_key_unsound () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "S"
       [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ]
       [ Constr.Unique [ "x" ] ]);
  Database.create_table db
    (Table_def.make "R" [ coldef "a" Ctype.Int; coldef "v" Ctype.Int ] []);
  Database.load db "S" [ [ Value.Null; i 1 ]; [ Value.Null; i 2 ] ];
  Database.load db "R" [ [ i 7; i 5 ] ];
  let q =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [ { Canonical.table = "R"; rel = "R" };
            { Canonical.table = "S"; rel = "S" } ];
        where = Expr.etrue;
        group_by = [ cr "S" "x" ];
        select_cols = [ cr "S" "x" ];
        select_aggs = [ Agg.sum (cr "" "sv") (Expr.col "R" "v") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [ "R" ];
      }
  in
  (* the two NULL-key S rows fall into one group in E1 but stay two rows
     in E2 — the transformation is invalid *)
  let chk = Theorem.check db q in
  Alcotest.(check bool) "FD2 fails" false chk.Theorem.fd2;
  Alcotest.(check bool) "E1 ≠ E2" false (Theorem.equivalent db q);
  (match Testfd.test db q with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "TestFD must not trust a nullable UNIQUE key");
  (* declaring the column NOT NULL restores the key dependency *)
  let db2 = Database.create () in
  Database.create_table db2
    (Table_def.make "S"
       [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ]
       [ Constr.Unique [ "x" ]; Constr.Not_null "x" ]);
  let td = Option.get (Catalog.find_table (Database.catalog db2) "S") in
  Alcotest.(check int) "NOT NULL UNIQUE key is reliable" 1
    (List.length (Eager_fd.From_catalog.key_sets ~rel:"S" td))

(* ------------------------------------------------------------------ *)
(* Theorem: exact instance checks *)

let test_theorem_ex1 () =
  let db = emp_db () in
  let q = Canonical.of_input_exn db (emp_input ()) in
  let c = Theorem.check db q in
  Alcotest.(check bool) "FD1 holds" true c.Theorem.fd1;
  Alcotest.(check bool) "FD2 holds" true c.Theorem.fd2;
  Alcotest.(check bool) "E1 ≡ E2 on the instance" true (Theorem.equivalent db q)

let test_theorem_fd_violation () =
  (* group by D.Name where two departments share a name: with GA1 = ∅ and
     GA1+ = {E.DeptID}, FD1 ((D.Name) → E.DeptID) fails on the instance
     and the expressions differ *)
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Department"
       [ coldef "DeptID" Ctype.Int; coldef "Name" Ctype.String ]
       [ Constr.Primary_key [ "DeptID" ] ]);
  Database.create_table db
    (Table_def.make "Employee"
       [ coldef "EmpID" Ctype.Int; coldef "DeptID" Ctype.Int ]
       [ Constr.Primary_key [ "EmpID" ] ]);
  Database.load db "Department"
    [ [ i 1; Value.Str "Same" ]; [ i 2; Value.Str "Same" ] ];
  Database.load db "Employee" [ [ i 1; i 1 ]; [ i 2; i 2 ] ];
  let q =
    Canonical.of_input_exn db
      (emp_input ~group_by:[ cr "D" "Name" ] ~select_cols:[ cr "D" "Name" ] ())
  in
  let c = Theorem.check db q in
  Alcotest.(check bool) "FD1 fails on this instance" false c.Theorem.fd1;
  Alcotest.(check bool) "E1 and E2 differ" false (Theorem.equivalent db q);
  (* and TestFD correctly refuses *)
  match Testfd.test db q with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "TestFD must reject"

let test_theorem_join_provenance () =
  let db = emp_db () in
  let q = Canonical.of_input_exn db (emp_input ()) in
  let tagged = Theorem.join_with_provenance db q in
  (* 3 employees join (the NULL one does not) *)
  Alcotest.(check int) "join cardinality" 3 (List.length tagged);
  List.iter
    (fun (_, i2) ->
      Alcotest.(check bool) "provenance in range" true (i2 >= 0 && i2 < 3))
    tagged

(* TestFD soundness versus the exact conditions, on the paper examples *)
let test_testfd_implies_instance_fds () =
  let cases =
    [
      (fun () ->
        let db = emp_db () in
        (db, Canonical.of_input_exn db (emp_input ())));
      (fun () ->
        let db = printer_db () in
        (db, printer_query db));
    ]
  in
  List.iter
    (fun mk ->
      let db, q = mk () in
      match Testfd.test db q with
      | Testfd.Yes ->
          let c = Theorem.check db q in
          Alcotest.(check bool) "YES implies FD1" true c.Theorem.fd1;
          Alcotest.(check bool) "YES implies FD2" true c.Theorem.fd2;
          Alcotest.(check bool) "YES implies equivalence" true
            (Theorem.equivalent db q)
      | Testfd.No _ -> Alcotest.fail "expected YES on paper example")
    cases

(* ------------------------------------------------------------------ *)
(* Example 3 numeric result — grounded end-to-end check *)

let test_printer_query_results () =
  let db = printer_db () in
  let q = printer_query db in
  let rows = Eager_exec.Exec.run_rows db (Plans.e2 db q) in
  (* users on dragon: ann (usage 150, speeds {10,30}), bob (70, {30}) *)
  let sorted =
    List.sort compare (List.map Row.to_string rows)
  in
  Alcotest.(check (list string)) "Example 3 answer"
    [ "(1, 'ann', 150, 30, 10)"; "(2, 'bob', 70, 30, 30)" ]
    sorted;
  Alcotest.(check bool) "E1 agrees" true (Theorem.equivalent db q)

(* Theorem 2: SGA ⊂ GA with a DISTINCT projection — the conditions remain
   sufficient *)
let test_theorem2_distinct_subset () =
  let db = emp_db () in
  let q =
    Canonical.of_input_exn db
      {
        (emp_input ()) with
        Canonical.select_cols = [ cr "D" "Name" ] (* drop DeptID: SGA ⊂ GA *);
        select_distinct = true;
      }
  in
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "Theorem 2 equivalence" true (Theorem.equivalent db q);
  (* both plans project DISTINCT *)
  (match Plans.e1 db q, Plans.e2 db q with
  | Plan.Project { dedup = true; _ }, Plan.Project { dedup = true; _ } -> ()
  | _ -> Alcotest.fail "expected DISTINCT projections");
  (* the projection really is narrower than the grouping *)
  let rows = Eager_exec.Exec.run_rows db (Plans.e2 db q) in
  Alcotest.(check bool) "rows have 2 columns (Name + count)" true
    (List.for_all (fun r -> Array.length r = 2) rows)

let test_reverse_ineligible () =
  let db = emp_db () in
  let q =
    Canonical.of_input_exn db
      (emp_input ~group_by:[ cr "D" "Name" ] ~select_cols:[ cr "D" "Name" ] ())
  in
  match Reverse.eligible db q with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-key grouping must not be reversible"

(* ------------------------------------------------------------------ *)
(* predicate expansion (Example 3 closing remark) *)

let test_predicate_expansion () =
  let db = printer_db () in
  let q = printer_query db in
  (* exactly one derivable binding: A.Machine = 'dragon' through
     U.Machine = A.Machine ∧ U.Machine = 'dragon' *)
  Alcotest.(check int) "one derived atom" 1 (Expand.derived_count q);
  let q' = Expand.query q in
  Alcotest.(check int) "C1 gained the binding" 2 (List.length q'.Canonical.c1);
  Alcotest.(check bool) "idempotent" true (Expand.derived_count q' = 0);
  (* results unchanged on both plans *)
  let rows p = Eager_exec.Exec.run_rows db p in
  Alcotest.(check bool) "E1 unchanged" true
    (Eager_exec.Exec.multiset_equal (rows (Plans.e1 db q)) (rows (Plans.e1 db q')));
  Alcotest.(check bool) "E2 unchanged" true
    (Eager_exec.Exec.multiset_equal (rows (Plans.e2 db q)) (rows (Plans.e2 db q')));
  (* ... but the eager grouping consumes fewer rows: only dragon's auth
     rows (3) instead of all joined auth rows (4) *)
  let group_input plan =
    let _, st = Eager_exec.Exec.run db plan in
    match Eager_exec.Optree.find ~prefix:"GroupBy" st with
    | Some node -> List.hd (Eager_exec.Optree.in_rows node)
    | None -> Alcotest.fail "no group node"
  in
  let before = group_input (Plans.e2 db q) in
  let after = group_input (Plans.e2 db q') in
  Alcotest.(check bool)
    (Printf.sprintf "grouped input shrinks (%d -> %d)" before after)
    true (after < before);
  (* TestFD still accepts the expanded query *)
  (match Testfd.test db q' with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  (* nothing derivable on Example 1 *)
  let db1 = emp_db () in
  let q1 = Canonical.of_input_exn db1 (emp_input ()) in
  Alcotest.(check int) "Example 1: nothing to derive" 0 (Expand.derived_count q1)

let test_predicate_expansion_host_variable () =
  let db = printer_db () in
  let q0 = printer_query db in
  (* same query with a host variable instead of the literal *)
  let input =
    {
      Canonical.sources =
        [
          { Canonical.table = "UserAccount"; rel = "U" };
          { Canonical.table = "PrinterAuth"; rel = "A" };
          { Canonical.table = "Printer"; rel = "P" };
        ];
      where =
        Expr.conj
          [
            Expr.eq (Expr.col "U" "UserId") (Expr.col "A" "UserId");
            Expr.eq (Expr.col "U" "Machine") (Expr.col "A" "Machine");
            Expr.eq (Expr.col "A" "PNo") (Expr.col "P" "PNo");
            Expr.eq (Expr.col "U" "Machine") (Expr.Param "m");
          ];
      group_by = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_cols = [ cr "U" "UserId"; cr "U" "UserName" ];
      select_aggs = q0.Canonical.aggs;
      select_distinct = false;
      select_having = None;
      r1_hint = [];
    }
  in
  let q = Canonical.of_input_exn db input in
  Alcotest.(check int) "host variable propagates" 1 (Expand.derived_count q);
  let q' = Expand.query q in
  let params name = if name = "m" then Value.Str "dragon" else Value.Null in
  let rows p =
    Eager_exec.Exec.run_rows
      ~options:{ Eager_exec.Exec.default_options with params }
      db p
  in
  Alcotest.(check bool) "parameterised expansion sound" true
    (Eager_exec.Exec.multiset_equal (rows (Plans.e2 db q)) (rows (Plans.e2 db q')))

(* ------------------------------------------------------------------ *)
(* Section 8: reverse transformation *)

let test_reverse () =
  let db = printer_db () in
  let q = printer_query db in
  (match Reverse.eligible db q with
  | Ok () -> ()
  | Error r -> Alcotest.fail ("Example 5 must be eligible: " ^ r));
  (* the view plan is the R1' sub-plan: grouped on GA1+ *)
  (match Reverse.view_plan db q with
  | Plan.Group { by; _ } ->
      Alcotest.(check (list string)) "view grouped on GA1+"
        [ "A.Machine"; "A.UserId" ]
        (List.sort compare (List.map Colref.to_string by))
  | _ -> Alcotest.fail "expected the aggregated view plan");
  (* both strategies compute the same result *)
  let r_view =
    Eager_exec.Exec.run_rows db (Reverse.plan_of db q Reverse.Materialize_view)
  in
  let r_flat = Eager_exec.Exec.run_rows db (Reverse.plan_of db q Reverse.Flatten) in
  Alcotest.(check bool) "strategies agree" true
    (Eager_exec.Exec.multiset_equal r_view r_flat)

(* ------------------------------------------------------------------ *)
(* facade *)

let test_eager_facade () =
  let db = emp_db () in
  let q = Eager.canonicalize_exn db (emp_input ()) in
  (match Eager.validate db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  (match Eager.transform db q with
  | Ok _ -> ()
  | Error r -> Alcotest.fail r);
  let text = Eager.explain db q in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go k = k + m <= n && (String.sub text k m = sub || go (k + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("explain mentions " ^ sub) true (contains sub))
    [ "TestFD: YES"; "Plan E1"; "Plan E2"; "GROUP BY" ];
  (* invalid query: transform refuses *)
  let bad =
    Eager.canonicalize_exn db
      (emp_input ~group_by:[ cr "D" "Name" ] ~select_cols:[ cr "D" "Name" ] ())
  in
  Alcotest.(check bool) "transform refuses invalid" true
    (Result.is_error (Eager.transform db bad))

let () =
  Alcotest.run "core"
    [
      ( "canonical",
        [
          Alcotest.test_case "Example 1 partition" `Quick
            test_canonical_partition_ex1;
          Alcotest.test_case "Example 3 partition" `Quick
            test_canonical_partition_ex3;
          Alcotest.test_case "errors" `Quick test_canonical_errors;
          Alcotest.test_case "r1_hint for COUNT(*)" `Quick
            test_r1_hint_for_count_star;
        ] );
      ( "plans",
        [
          Alcotest.test_case "E1/E2 shapes" `Quick test_plan_shapes;
          Alcotest.test_case "multi-table side" `Quick
            test_join_tree_multi_table_side;
        ] );
      ( "testfd",
        [
          Alcotest.test_case "Example 1: YES" `Quick test_testfd_ex1_yes;
          Alcotest.test_case "Example 3: YES + trace" `Quick
            test_testfd_ex3_yes_with_trace;
          Alcotest.test_case "non-key grouping: NO" `Quick
            test_testfd_no_nonkey_grouping;
          Alcotest.test_case "inequality join: NO" `Quick
            test_testfd_no_on_inequality_join;
          Alcotest.test_case "strict vs relaxed" `Quick
            test_testfd_strict_vs_relaxed;
          Alcotest.test_case "disjunctive condition" `Quick
            test_testfd_disjunction;
          Alcotest.test_case "host variables" `Quick test_testfd_host_variable;
          Alcotest.test_case "partition sensitivity" `Quick
            test_testfd_partition_sensitivity;
          Alcotest.test_case "nullable UNIQUE keys are unreliable" `Quick
            test_nullable_unique_key_unsound;
        ] );
      ( "theorem",
        [
          Alcotest.test_case "Example 1 conditions" `Quick test_theorem_ex1;
          Alcotest.test_case "FD violation detected" `Quick
            test_theorem_fd_violation;
          Alcotest.test_case "join provenance" `Quick test_theorem_join_provenance;
          Alcotest.test_case "TestFD soundness" `Quick
            test_testfd_implies_instance_fds;
          Alcotest.test_case "Theorem 2 (DISTINCT subset)" `Quick
            test_theorem2_distinct_subset;
          Alcotest.test_case "reverse ineligible" `Quick test_reverse_ineligible;
        ] );
      ( "expansion",
        [
          Alcotest.test_case "Example 3 binding derived" `Quick
            test_predicate_expansion;
          Alcotest.test_case "host variables propagate" `Quick
            test_predicate_expansion_host_variable;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "Example 3 numbers" `Quick test_printer_query_results;
          Alcotest.test_case "reverse transformation" `Quick test_reverse;
          Alcotest.test_case "facade" `Quick test_eager_facade;
        ] );
    ]
