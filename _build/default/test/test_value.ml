(* Unit and property tests for the SQL value domain and three-valued logic.
   Figure 2 (AND/OR truth tables) and Figure 3 (interpretation operators and
   the =ⁿ duplicate equality) are checked exhaustively. *)

open Eager_value

let tb = Alcotest.testable Tbool.pp Tbool.equal
let vv = Alcotest.testable Value.pp Value.equal

let all3 = [ Tbool.True; Tbool.Unknown; Tbool.False ]

(* Figure 2, AND table: rows/cols in order true, unknown, false *)
let fig2_and =
  [
    (Tbool.True, Tbool.True, Tbool.True);
    (Tbool.True, Tbool.Unknown, Tbool.Unknown);
    (Tbool.True, Tbool.False, Tbool.False);
    (Tbool.Unknown, Tbool.True, Tbool.Unknown);
    (Tbool.Unknown, Tbool.Unknown, Tbool.Unknown);
    (Tbool.Unknown, Tbool.False, Tbool.False);
    (Tbool.False, Tbool.True, Tbool.False);
    (Tbool.False, Tbool.Unknown, Tbool.False);
    (Tbool.False, Tbool.False, Tbool.False);
  ]

let fig2_or =
  [
    (Tbool.True, Tbool.True, Tbool.True);
    (Tbool.True, Tbool.Unknown, Tbool.True);
    (Tbool.True, Tbool.False, Tbool.True);
    (Tbool.Unknown, Tbool.True, Tbool.True);
    (Tbool.Unknown, Tbool.Unknown, Tbool.Unknown);
    (Tbool.Unknown, Tbool.False, Tbool.Unknown);
    (Tbool.False, Tbool.True, Tbool.True);
    (Tbool.False, Tbool.Unknown, Tbool.Unknown);
    (Tbool.False, Tbool.False, Tbool.False);
  ]

let test_fig2_and () =
  List.iter
    (fun (a, b, expect) ->
      Alcotest.check tb
        (Printf.sprintf "%s AND %s" (Tbool.to_string a) (Tbool.to_string b))
        expect (Tbool.and_ a b))
    fig2_and

let test_fig2_or () =
  List.iter
    (fun (a, b, expect) ->
      Alcotest.check tb
        (Printf.sprintf "%s OR %s" (Tbool.to_string a) (Tbool.to_string b))
        expect (Tbool.or_ a b))
    fig2_or

let test_not () =
  Alcotest.check tb "not true" Tbool.False (Tbool.not_ Tbool.True);
  Alcotest.check tb "not false" Tbool.True (Tbool.not_ Tbool.False);
  Alcotest.check tb "not unknown" Tbool.Unknown (Tbool.not_ Tbool.Unknown)

(* Figure 3: ⌊P⌋ maps unknown to false, ⌈P⌉ maps unknown to true *)
let test_fig3_interpreters () =
  Alcotest.(check bool) "⌊true⌋" true (Tbool.holds Tbool.True);
  Alcotest.(check bool) "⌊unknown⌋" false (Tbool.holds Tbool.Unknown);
  Alcotest.(check bool) "⌊false⌋" false (Tbool.holds Tbool.False);
  Alcotest.(check bool) "⌈true⌉" true (Tbool.possible Tbool.True);
  Alcotest.(check bool) "⌈unknown⌉" true (Tbool.possible Tbool.Unknown);
  Alcotest.(check bool) "⌈false⌉" false (Tbool.possible Tbool.False)

(* Figure 3: =ⁿ — NULL equal to NULL for duplicate purposes *)
let test_null_eq () =
  Alcotest.(check bool) "NULL =ⁿ NULL" true (Value.null_eq Value.Null Value.Null);
  Alcotest.(check bool) "NULL =ⁿ 1" false (Value.null_eq Value.Null (Value.Int 1));
  Alcotest.(check bool) "1 =ⁿ NULL" false (Value.null_eq (Value.Int 1) Value.Null);
  Alcotest.(check bool) "1 =ⁿ 1" true (Value.null_eq (Value.Int 1) (Value.Int 1));
  Alcotest.(check bool) "1 =ⁿ 2" false (Value.null_eq (Value.Int 1) (Value.Int 2));
  Alcotest.(check bool) "1 =ⁿ 1.0 (numeric coercion)" true
    (Value.null_eq (Value.Int 1) (Value.Float 1.0));
  Alcotest.(check bool) "'a' =ⁿ 'a'" true
    (Value.null_eq (Value.Str "a") (Value.Str "a"))

let test_cmp_null_is_unknown () =
  List.iter
    (fun f ->
      Alcotest.check tb "cmp with NULL left" Tbool.Unknown
        (f Value.Null (Value.Int 1));
      Alcotest.check tb "cmp with NULL right" Tbool.Unknown
        (f (Value.Int 1) Value.Null);
      Alcotest.check tb "cmp NULL NULL" Tbool.Unknown (f Value.Null Value.Null))
    [ Value.cmp_eq; Value.cmp_ne; Value.cmp_lt; Value.cmp_le; Value.cmp_gt; Value.cmp_ge ]

let test_cmp_values () =
  Alcotest.check tb "1 = 1" Tbool.True (Value.cmp_eq (Value.Int 1) (Value.Int 1));
  Alcotest.check tb "1 <> 1" Tbool.False (Value.cmp_ne (Value.Int 1) (Value.Int 1));
  Alcotest.check tb "1 < 2" Tbool.True (Value.cmp_lt (Value.Int 1) (Value.Int 2));
  Alcotest.check tb "2 <= 1" Tbool.False (Value.cmp_le (Value.Int 2) (Value.Int 1));
  Alcotest.check tb "2 > 1" Tbool.True (Value.cmp_gt (Value.Int 2) (Value.Int 1));
  Alcotest.check tb "1 >= 1" Tbool.True (Value.cmp_ge (Value.Int 1) (Value.Int 1));
  Alcotest.check tb "int vs float" Tbool.True
    (Value.cmp_eq (Value.Int 2) (Value.Float 2.0));
  Alcotest.check tb "1.5 < 2" Tbool.True
    (Value.cmp_lt (Value.Float 1.5) (Value.Int 2));
  Alcotest.check tb "'a' < 'b'" Tbool.True
    (Value.cmp_lt (Value.Str "a") (Value.Str "b"))

let test_arith () =
  Alcotest.check vv "1+2" (Value.Int 3) (Value.add (Value.Int 1) (Value.Int 2));
  Alcotest.check vv "1+NULL" Value.Null (Value.add (Value.Int 1) Value.Null);
  Alcotest.check vv "NULL*2" Value.Null (Value.mul Value.Null (Value.Int 2));
  Alcotest.check vv "mixed 1+2.5" (Value.Float 3.5)
    (Value.add (Value.Int 1) (Value.Float 2.5));
  Alcotest.check vv "7/2 int division" (Value.Int 3)
    (Value.div (Value.Int 7) (Value.Int 2));
  Alcotest.check vv "7.0/2" (Value.Float 3.5)
    (Value.div (Value.Float 7.0) (Value.Int 2));
  Alcotest.check vv "div by zero is NULL" Value.Null
    (Value.div (Value.Int 7) (Value.Int 0));
  Alcotest.check vv "float div by zero is NULL" Value.Null
    (Value.div (Value.Float 7.0) (Value.Float 0.0));
  Alcotest.check vv "neg" (Value.Int (-3)) (Value.neg (Value.Int 3));
  Alcotest.check vv "neg NULL" Value.Null (Value.neg Value.Null)

let test_compare_total () =
  Alcotest.(check int) "NULL = NULL in total order" 0
    (Value.compare_total Value.Null Value.Null);
  Alcotest.(check bool) "NULL sorts first" true
    (Value.compare_total Value.Null (Value.Int 0) < 0);
  Alcotest.(check int) "2 vs 2.0" 0
    (Value.compare_total (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "1 before 2" true
    (Value.compare_total (Value.Int 1) (Value.Int 2) < 0)

(* ---------------- qcheck generators and properties ---------------- *)

let value_gen : Value.t QCheck.arbitrary =
  QCheck.make ~print:Value.to_string
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun n -> Value.Int n) (int_range (-4) 4);
          map (fun f -> Value.Float (float_of_int f /. 2.)) (int_range (-4) 4);
          map (fun b -> Value.Bool b) bool;
          map (fun s -> Value.Str s) (oneofl [ "a"; "b"; "c" ]);
        ])

let tbool_gen = QCheck.make QCheck.Gen.(oneofl all3)

let prop_compare_total_consistent_with_null_eq =
  QCheck.Test.make ~count:500
    ~name:"compare_total = 0 iff null_eq"
    (QCheck.pair value_gen value_gen)
    (fun (a, b) -> Value.compare_total a b = 0 = Value.null_eq a b)

let prop_compare_total_antisym =
  QCheck.Test.make ~count:500 ~name:"compare_total antisymmetric"
    (QCheck.pair value_gen value_gen)
    (fun (a, b) ->
      compare (Value.compare_total a b) 0 = compare 0 (Value.compare_total b a))

let prop_compare_total_transitive =
  QCheck.Test.make ~count:500 ~name:"compare_total transitive"
    (QCheck.triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      if Value.compare_total a b <= 0 && Value.compare_total b c <= 0 then
        Value.compare_total a c <= 0
      else true)

let prop_null_eq_equivalence =
  QCheck.Test.make ~count:500 ~name:"null_eq is an equivalence"
    (QCheck.triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      Value.null_eq a a
      && Value.null_eq a b = Value.null_eq b a
      && if Value.null_eq a b && Value.null_eq b c then Value.null_eq a c
         else true)

let prop_and_commutative =
  QCheck.Test.make ~count:200 ~name:"AND commutative"
    (QCheck.pair tbool_gen tbool_gen)
    (fun (a, b) -> Tbool.and_ a b = Tbool.and_ b a)

let prop_or_commutative =
  QCheck.Test.make ~count:200 ~name:"OR commutative"
    (QCheck.pair tbool_gen tbool_gen)
    (fun (a, b) -> Tbool.or_ a b = Tbool.or_ b a)

let prop_de_morgan =
  QCheck.Test.make ~count:200 ~name:"De Morgan holds in Kleene logic"
    (QCheck.pair tbool_gen tbool_gen)
    (fun (a, b) ->
      Tbool.not_ (Tbool.and_ a b) = Tbool.or_ (Tbool.not_ a) (Tbool.not_ b)
      && Tbool.not_ (Tbool.or_ a b) = Tbool.and_ (Tbool.not_ a) (Tbool.not_ b))

let prop_distributivity =
  QCheck.Test.make ~count:200 ~name:"AND distributes over OR (Kleene)"
    (QCheck.triple tbool_gen tbool_gen tbool_gen)
    (fun (a, b, c) ->
      Tbool.and_ a (Tbool.or_ b c)
      = Tbool.or_ (Tbool.and_ a b) (Tbool.and_ a c))

let prop_arith_null_propagates =
  QCheck.Test.make ~count:300 ~name:"arithmetic propagates NULL"
    value_gen
    (fun v ->
      Value.is_null (Value.add v Value.Null)
      && Value.is_null (Value.mul Value.Null v))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "value"
    [
      ( "tbool-fig2",
        [
          Alcotest.test_case "AND truth table" `Quick test_fig2_and;
          Alcotest.test_case "OR truth table" `Quick test_fig2_or;
          Alcotest.test_case "NOT" `Quick test_not;
          Alcotest.test_case "fig3 interpreters" `Quick test_fig3_interpreters;
        ] );
      ( "value",
        [
          Alcotest.test_case "null_eq (=ⁿ)" `Quick test_null_eq;
          Alcotest.test_case "cmp with NULL" `Quick test_cmp_null_is_unknown;
          Alcotest.test_case "cmp values" `Quick test_cmp_values;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "total order" `Quick test_compare_total;
        ] );
      qsuite "properties"
        [
          prop_compare_total_consistent_with_null_eq;
          prop_compare_total_antisym;
          prop_compare_total_transitive;
          prop_null_eq_equivalence;
          prop_and_commutative;
          prop_or_commutative;
          prop_de_morgan;
          prop_distributivity;
          prop_arith_null_propagates;
        ];
    ]
