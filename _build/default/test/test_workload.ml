(* Workload-generator tests: the generators must realise exactly the
   cardinalities the paper's figures quote, and all generated data must
   satisfy the declared constraints (inserts go through enforcement). *)

open Eager_value
open Eager_storage
open Eager_core
open Eager_exec
open Eager_workload

let count db table = Database.row_count db table

let test_employee_dept_sizes () =
  let w = Employee_dept.setup ~employees:1234 ~departments:37 () in
  let db = w.Employee_dept.db in
  Alcotest.(check int) "employees" 1234 (count db "Employee");
  Alcotest.(check int) "departments" 37 (count db "Department")

let test_employee_dept_nulls () =
  let w =
    Employee_dept.setup ~employees:1000 ~departments:10 ~null_dept_fraction:0.5 ()
  in
  let db = w.Employee_dept.db in
  let stats = Database.stats db "Employee" in
  let dept_col = Stats.col stats 3 in
  Alcotest.(check bool)
    (Printf.sprintf "about half NULL (got %d)" dept_col.Stats.nulls)
    true
    (dept_col.Stats.nulls > 350 && dept_col.Stats.nulls < 650)

let test_employee_dept_deterministic () =
  let w1 = Employee_dept.setup ~seed:9 ~employees:50 ~departments:5 () in
  let w2 = Employee_dept.setup ~seed:9 ~employees:50 ~departments:5 () in
  let rows db = Heap.to_list (Database.heap db "Employee") in
  Alcotest.(check bool) "same seed, same data" true
    (Exec.multiset_equal (rows w1.Employee_dept.db) (rows w2.Employee_dept.db))

(* Figure 8 exact cardinalities *)
let test_contrived_cardinalities () =
  let w = Contrived.setup () in
  let db = w.Contrived.db and q = w.Contrived.query in
  Alcotest.(check int) "A has 10000 rows" 10000 (count db "A");
  Alcotest.(check int) "B has 100 rows" 100 (count db "B");
  (* join yields 50 rows *)
  let joined = Theorem.join_with_provenance db q in
  Alcotest.(check int) "join yields 50 rows" 50 (List.length joined);
  (* grouped lazily: 10 groups *)
  let lazy_out = Exec.run_rows db (Plans.e1 db q) in
  Alcotest.(check int) "10 groups after join" 10 (List.length lazy_out);
  (* grouped eagerly: 9000 groups *)
  let r1' = Exec.run_rows db (Plans.e2_r1_prime db q) in
  Alcotest.(check int) "9000 groups before join" 9000 (List.length r1');
  (* still a valid transformation *)
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "E1 ≡ E2" true (Theorem.equivalent db q)

let test_contrived_parameter_validation () =
  Alcotest.(check bool) "matched_groups > b_rows rejected" true
    (try ignore (Contrived.setup ~matched_groups:200 ~b_rows:100 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "a_groups > a_rows rejected" true
    (try ignore (Contrived.setup ~a_groups:20000 ()); false
     with Invalid_argument _ -> true)

let test_printers_workload () =
  let w = Printers.setup ~users:60 ~machines:4 ~printers:10 () in
  let db = w.Printers.db and q = w.Printers.query in
  Alcotest.(check int) "users" 60 (count db "UserAccount");
  Alcotest.(check int) "printers" 10 (count db "Printer");
  Alcotest.(check bool) "auth rows exist" true (count db "PrinterAuth" > 0);
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "E1 ≡ E2" true (Theorem.equivalent db q);
  Alcotest.(check string) "dragon is machine 0" "dragon" (Printers.machine_name 0)

let test_parts_workload () =
  let w = Parts.setup ~parts:400 ~suppliers:20 ~classes:30 () in
  let db = w.Parts.db and q = w.Parts.query in
  Alcotest.(check int) "parts" 400 (count db "Part");
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "E1 ≡ E2" true (Theorem.equivalent db q)

let test_sales_workload () =
  let w = Sales.setup ~customers:40 ~orders:600 () in
  let db = w.Sales.db and q = w.Sales.query in
  Alcotest.(check int) "customers" 40 (count db "Customer");
  Alcotest.(check int) "orders" 600 (count db "Orders");
  (match Testfd.test db q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail r);
  Alcotest.(check bool) "E1 ≡ E2" true (Theorem.equivalent db q);
  (* the HAVING variant filters and stays equivalent *)
  let wh = Sales.setup ~customers:40 ~orders:600 ~revenue_at_least:5_000 () in
  let qh = wh.Sales.query and dbh = wh.Sales.db in
  Alcotest.(check bool) "having variant carries the filter" true
    (qh.Canonical.having <> None);
  let all = Exec.run_rows db (Plans.e2 db q) in
  let big = Exec.run_rows dbh (Plans.e2 dbh qh) in
  Alcotest.(check bool) "threshold filters" true
    (List.length big < List.length all);
  Alcotest.(check bool) "having variant equivalent" true
    (Theorem.equivalent dbh qh)

let test_sweep_fanin () =
  let points = Sweep.by_fanin ~employees:600 ~departments:[ 3; 30 ] () in
  Alcotest.(check int) "two points" 2 (List.length points);
  let knobs = List.map (fun p -> p.Sweep.knob) points in
  Alcotest.(check (list (float 0.01))) "knobs are rows-per-group" [ 200.; 20. ] knobs;
  List.iter
    (fun p ->
      match Testfd.test p.Sweep.db p.Sweep.query with
      | Testfd.Yes -> ()
      | Testfd.No r -> Alcotest.fail r)
    points

let test_sweep_selectivity () =
  let points =
    Sweep.by_selectivity ~employees:500 ~departments:10
      ~fractions:[ 0.1; 0.9 ] ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  (* the low-selectivity point really has fewer joining employees *)
  let joined p = List.length (Theorem.join_with_provenance p.Sweep.db p.Sweep.query) in
  match points with
  | [ lo; hi ] ->
      Alcotest.(check bool)
        (Printf.sprintf "selectivity knob works (%d < %d)" (joined lo) (joined hi))
        true
        (joined lo < joined hi)
  | _ -> Alcotest.fail "expected two points"

(* every generated workload respects its own FK constraints: re-inserting
   all Employee rows into a fresh DB with the same schema must succeed *)
let test_fk_integrity_of_generated_data () =
  let w = Employee_dept.setup ~employees:200 ~departments:7 () in
  let db = w.Employee_dept.db in
  Heap.iter
    (fun row ->
      let dept = row.(3) in
      if not (Value.is_null dept) then begin
        let found =
          Heap.exists
            (fun drow -> Value.null_eq drow.(0) dept)
            (Database.heap db "Department")
        in
        Alcotest.(check bool) "FK target exists" true found
      end)
    (Database.heap db "Employee")

let () =
  Alcotest.run "workload"
    [
      ( "employee_dept",
        [
          Alcotest.test_case "sizes" `Quick test_employee_dept_sizes;
          Alcotest.test_case "null fraction" `Quick test_employee_dept_nulls;
          Alcotest.test_case "deterministic" `Quick
            test_employee_dept_deterministic;
          Alcotest.test_case "FK integrity" `Quick
            test_fk_integrity_of_generated_data;
        ] );
      ( "contrived (Figure 8)",
        [
          Alcotest.test_case "exact cardinalities" `Quick
            test_contrived_cardinalities;
          Alcotest.test_case "parameter validation" `Quick
            test_contrived_parameter_validation;
        ] );
      ( "printers (Example 3)",
        [ Alcotest.test_case "workload" `Quick test_printers_workload ] );
      ( "parts (Example 2)",
        [ Alcotest.test_case "workload" `Quick test_parts_workload ] );
      ("sales", [ Alcotest.test_case "workload + HAVING" `Quick test_sales_workload ]);
      ( "sweeps",
        [
          Alcotest.test_case "fan-in" `Quick test_sweep_fanin;
          Alcotest.test_case "selectivity" `Quick test_sweep_selectivity;
        ] );
    ]
