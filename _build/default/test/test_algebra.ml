(* Algebra tests: plan construction, derived schemas, aggregate expressions
   and the plan printer. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_algebra

let cr = Colref.make

let emp_schema =
  Schema.make
    [
      (cr "E" "id", Ctype.Int);
      (cr "E" "dept", Ctype.Int);
      (cr "E" "salary", Ctype.Float);
      (cr "E" "name", Ctype.String);
    ]

let dept_schema =
  Schema.make [ (cr "D" "dept", Ctype.Int); (cr "D" "dname", Ctype.String) ]

let scan_e = Plan.scan ~table:"Employee" ~rel:"E" emp_schema
let scan_d = Plan.scan ~table:"Department" ~rel:"D" dept_schema

let test_scan_schema () =
  Alcotest.(check int) "scan arity" 4 (Schema.arity (Plan.schema_of scan_e))

let test_select_schema_and_identity () =
  let p = Plan.select (Expr.eq (Expr.col "E" "id") (Expr.int 1)) scan_e in
  Alcotest.(check int) "select keeps schema" 4 (Schema.arity (Plan.schema_of p));
  (* selecting on TRUE is the identity *)
  (match Plan.select Expr.etrue scan_e with
  | Plan.Scan _ -> ()
  | _ -> Alcotest.fail "select TRUE should be elided")

let test_project_schema () =
  let p = Plan.project [ cr "E" "id"; cr "E" "name" ] scan_e in
  let s = Plan.schema_of p in
  Alcotest.(check int) "projected arity" 2 (Schema.arity s);
  Alcotest.(check bool) "kept id" true (Schema.mem s (cr "E" "id"));
  Alcotest.(check bool) "dropped dept" false (Schema.mem s (cr "E" "dept"));
  (* unknown projection column fails when the schema is computed *)
  Alcotest.(check bool) "bad projection rejected" true
    (try
       ignore (Plan.schema_of (Plan.project [ cr "E" "zzz" ] scan_e));
       false
     with Not_found | Failure _ | Invalid_argument _ -> true)

let test_join_product_schema () =
  let j =
    Plan.join (Expr.eq (Expr.col "E" "dept") (Expr.col "D" "dept")) scan_e scan_d
  in
  Alcotest.(check int) "join schema = concat" 6 (Schema.arity (Plan.schema_of j));
  let p = Plan.Product (scan_e, scan_d) in
  Alcotest.(check int) "product schema = concat" 6
    (Schema.arity (Plan.schema_of p));
  Alcotest.(check (list string)) "relations in order" [ "E"; "D" ]
    (Plan.relations j)

let test_group_schema () =
  let aggs =
    [
      Agg.count_star (cr "" "n");
      Agg.sum (cr "" "total") (Expr.col "E" "salary");
      Agg.avg (cr "" "mean") (Expr.col "E" "salary");
      Agg.min_ (cr "" "lo") (Expr.col "E" "id");
    ]
  in
  let g = Plan.group ~by:[ cr "E" "dept" ] ~aggs scan_e in
  let s = Plan.schema_of g in
  Alcotest.(check int) "1 group col + 4 aggs" 5 (Schema.arity s);
  Alcotest.(check string) "COUNT is INTEGER" "INTEGER"
    (Ctype.to_string (Schema.type_of s (cr "" "n")));
  Alcotest.(check string) "SUM keeps operand type" "FLOAT"
    (Ctype.to_string (Schema.type_of s (cr "" "total")));
  Alcotest.(check string) "AVG is FLOAT" "FLOAT"
    (Ctype.to_string (Schema.type_of s (cr "" "mean")));
  Alcotest.(check string) "MIN keeps operand type" "INTEGER"
    (Ctype.to_string (Schema.type_of s (cr "" "lo")))

let test_agg_columns () =
  let a =
    Agg.make (cr "" "x")
      (Agg.Arith
         ( Expr.Add,
           Agg.Call (Agg.Count (Expr.col "E" "id")),
           Agg.Call (Agg.Sum (Expr.Arith (Expr.Add, Expr.col "E" "salary",
                                          Expr.col "E" "dept"))) ))
  in
  Alcotest.(check int) "AA columns" 3 (Colref.Set.cardinal (Agg.columns a));
  Alcotest.(check int) "count_star has no AA columns" 0
    (Colref.Set.cardinal (Agg.columns (Agg.count_star (cr "" "n"))))

let test_agg_out_type_arith () =
  (* COUNT(x) + SUM(float) mixes INTEGER and FLOAT → FLOAT *)
  let calc =
    Agg.Arith
      ( Expr.Add,
        Agg.Call (Agg.Count (Expr.col "E" "id")),
        Agg.Call (Agg.Sum (Expr.col "E" "salary")) )
  in
  Alcotest.(check string) "mixed arith type" "FLOAT"
    (Ctype.to_string (Agg.out_type emp_schema calc));
  Alcotest.(check string) "const int" "INTEGER"
    (Ctype.to_string (Agg.out_type emp_schema (Agg.Const (Value.Int 1))))

let test_printing () =
  let plan =
    Plan.project [ cr "D" "dname"; cr "" "n" ]
      (Plan.group ~by:[ cr "D" "dname" ]
         ~aggs:[ Agg.count_star (cr "" "n") ]
         (Plan.join
            (Expr.eq (Expr.col "E" "dept") (Expr.col "D" "dept"))
            scan_e scan_d))
  in
  let text = Plan.to_string plan in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("plan text mentions " ^ sub) true (contains sub))
    [ "Project"; "GroupBy"; "Join"; "Scan Employee AS E"; "COUNT(*)" ];
  Alcotest.(check string) "label is the root only" "Project [D.dname, n]"
    (Plan.label plan)

let test_annotated_printing () =
  let note = function Plan.Scan _ -> Some "10 rows" | _ -> None in
  let text = Format.asprintf "%a" (Plan.pp_annotated ~note) scan_e in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "annotation printed" true (contains "10 rows")

let () =
  Alcotest.run "algebra"
    [
      ( "schema",
        [
          Alcotest.test_case "scan" `Quick test_scan_schema;
          Alcotest.test_case "select" `Quick test_select_schema_and_identity;
          Alcotest.test_case "project" `Quick test_project_schema;
          Alcotest.test_case "join/product" `Quick test_join_product_schema;
          Alcotest.test_case "group" `Quick test_group_schema;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "columns" `Quick test_agg_columns;
          Alcotest.test_case "output types" `Quick test_agg_out_type_arith;
        ] );
      ( "printing",
        [
          Alcotest.test_case "plan text" `Quick test_printing;
          Alcotest.test_case "annotations" `Quick test_annotated_printing;
        ] );
    ]
