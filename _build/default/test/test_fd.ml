(* Functional-dependency framework tests: attribute closure (Figure 7),
   equality mining, instance-level verification, and the Example 2 derived
   dependencies. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_fd

let cr rel name = Colref.make rel name

(* ---------------- Figure 7: the closure illustration ----------------
   Known: a: A1 = 25, b: A1 → A3, c: A3 = A4.   Conclusion: A2 → A4. *)
let test_figure7 () =
  let a1 = cr "R" "A1" and a2 = cr "R" "A2" and a3 = cr "R" "A3"
  and a4 = cr "R" "A4" in
  let closure =
    Closure.compute
      ~start:(Colref.set_of_list [ a2 ])
      ~constants:(Colref.set_of_list [ a1 ])
      ~equalities:[ (a3, a4) ]
      ~fds:[ Fd.make [ a1 ] [ a3 ] ]
  in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Colref.to_string c ^ " in closure")
        true (Colref.Set.mem c closure))
    [ a1; a2; a3; a4 ];
  Alcotest.(check bool) "A2 -> A4 implied" true
    (Closure.implies
       ~constants:(Colref.set_of_list [ a1 ])
       ~equalities:[ (a3, a4) ]
       ~fds:[ Fd.make [ a1 ] [ a3 ] ]
       (Fd.make [ a2 ] [ a4 ]))

let test_closure_no_rules () =
  let a = cr "R" "a" and b = cr "R" "b" in
  let closure =
    Closure.compute
      ~start:(Colref.set_of_list [ a ])
      ~constants:Colref.Set.empty ~equalities:[] ~fds:[]
  in
  Alcotest.(check bool) "only the seed" true
    (Colref.Set.equal closure (Colref.set_of_list [ a ]));
  Alcotest.(check bool) "b not implied" false
    (Closure.implies ~constants:Colref.Set.empty ~equalities:[] ~fds:[]
       (Fd.make [ a ] [ b ]))

let test_closure_transitive_equalities () =
  (* a = b, b = c, c = d: closure of {a} contains d *)
  let a = cr "R" "a" and b = cr "R" "b" and c = cr "R" "c" and d = cr "R" "d" in
  let closure =
    Closure.compute
      ~start:(Colref.set_of_list [ a ])
      ~constants:Colref.Set.empty
      ~equalities:[ (c, d); (a, b); (b, c) ]
      ~fds:[]
  in
  Alcotest.(check bool) "d reached through chain" true (Colref.Set.mem d closure)

let test_closure_fd_needs_full_lhs () =
  (* (a,b) → c must not fire from {a} alone *)
  let a = cr "R" "a" and b = cr "R" "b" and c = cr "R" "c" in
  let fds = [ Fd.make [ a; b ] [ c ] ] in
  let from_a =
    Closure.compute ~start:(Colref.set_of_list [ a ])
      ~constants:Colref.Set.empty ~equalities:[] ~fds
  in
  Alcotest.(check bool) "c not reached from a" false (Colref.Set.mem c from_a);
  let from_ab =
    Closure.compute ~start:(Colref.set_of_list [ a; b ])
      ~constants:Colref.Set.empty ~equalities:[] ~fds
  in
  Alcotest.(check bool) "c reached from (a,b)" true (Colref.Set.mem c from_ab)

(* ---------------- mining ---------------- *)

let test_mine () =
  let a = Expr.col "R" "a" and b = Expr.col "R" "b" in
  let mined =
    Mine.of_atoms
      [
        Expr.eq a (Expr.int 5);
        Expr.eq a b;
        Expr.eq b (Expr.Param "h");
        Expr.Cmp (Expr.Lt, a, b);
      ]
  in
  Alcotest.(check int) "two constants (one by host variable)" 2
    (Colref.Set.cardinal mined.Mine.constants);
  Alcotest.(check int) "one equality" 1 (List.length mined.Mine.equalities);
  Alcotest.(check int) "one residual" 1 (List.length mined.Mine.residual);
  Alcotest.(check bool) "not all-equality" false
    (Mine.all_equality_atoms [ Expr.eq a b; Expr.Cmp (Expr.Lt, a, b) ]);
  Alcotest.(check bool) "all-equality" true
    (Mine.all_equality_atoms [ Expr.eq a b; Expr.eq b (Expr.int 1) ])

(* ---------------- instance-level verification ---------------- *)

let schema2 =
  Schema.make
    [ (cr "R" "a", Ctype.Int); (cr "R" "b", Ctype.Int); (cr "R" "c", Ctype.Int) ]

let rows_of l = List.map (fun (a, b, c) -> [| a; b; c |]) l

let test_fd_holds_basic () =
  let i n = Value.Int n in
  let rows = rows_of [ (i 1, i 10, i 5); (i 1, i 10, i 6); (i 2, i 20, i 5) ] in
  Alcotest.(check bool) "a -> b holds" true
    (Instance_check.fd_holds ~schema:schema2 ~lhs:[ cr "R" "a" ]
       ~rhs:[ cr "R" "b" ] rows);
  Alcotest.(check bool) "a -> c fails" false
    (Instance_check.fd_holds ~schema:schema2 ~lhs:[ cr "R" "a" ]
       ~rhs:[ cr "R" "c" ] rows)

let test_fd_holds_null_semantics () =
  let i n = Value.Int n in
  (* Definition 2 uses =ⁿ on both sides: two NULL keys are the same key *)
  let rows = rows_of [ (Value.Null, i 10, i 1); (Value.Null, i 10, i 2) ] in
  Alcotest.(check bool) "NULL keys grouped together, b agrees" true
    (Instance_check.fd_holds ~schema:schema2 ~lhs:[ cr "R" "a" ]
       ~rhs:[ cr "R" "b" ] rows);
  let rows2 = rows_of [ (Value.Null, i 10, i 1); (Value.Null, i 11, i 2) ] in
  Alcotest.(check bool) "NULL keys grouped together, b differs -> FD fails"
    false
    (Instance_check.fd_holds ~schema:schema2 ~lhs:[ cr "R" "a" ]
       ~rhs:[ cr "R" "b" ] rows2);
  (* NULL on the right-hand side: NULL =ⁿ NULL, so the FD can hold *)
  let rows3 = rows_of [ (i 1, Value.Null, i 1); (i 1, Value.Null, i 2) ] in
  Alcotest.(check bool) "NULL rhs values agree under =ⁿ" true
    (Instance_check.fd_holds ~schema:schema2 ~lhs:[ cr "R" "a" ]
       ~rhs:[ cr "R" "b" ] rows3)

let test_determines_generic () =
  Alcotest.(check bool) "generic determines" true
    (Instance_check.determines
       ~key_of:(fun (k, _) -> [ Value.Int k ])
       ~value_of:(fun (_, v) -> [ Value.Int v ])
       [ (1, 10); (2, 20); (1, 10) ]);
  Alcotest.(check bool) "generic violation" false
    (Instance_check.determines
       ~key_of:(fun (k, _) -> [ Value.Int k ])
       ~value_of:(fun (_, v) -> [ Value.Int v ])
       [ (1, 10); (1, 11) ])

(* ---------------- from_catalog + Example 2 ---------------- *)

let part_table () =
  let col name ctype : Table_def.column_def =
    { Table_def.cname = name; ctype; domain = None }
  in
  Table_def.make "Part"
    [
      col "ClassCode" Ctype.Int;
      col "PartNo" Ctype.Int;
      col "PartName" Ctype.String;
      col "SupplierNo" Ctype.Int;
    ]
    [ Constr.Primary_key [ "ClassCode"; "PartNo" ] ]

let supplier_table () =
  let col name ctype : Table_def.column_def =
    { Table_def.cname = name; ctype; domain = None }
  in
  Table_def.make "Supplier"
    [ col "SupplierNo" Ctype.Int; col "Name" Ctype.String; col "Address" Ctype.String ]
    [ Constr.Primary_key [ "SupplierNo" ] ]

let test_key_fds () =
  let fds = From_catalog.key_fds ~rel:"P" (part_table ()) in
  Alcotest.(check int) "one key dependency" 1 (List.length fds);
  let fd = List.hd fds in
  Alcotest.(check int) "lhs is the 2-column key" 2 (Colref.Set.cardinal fd.Fd.lhs);
  Alcotest.(check int) "rhs is all 4 columns" 4 (Colref.Set.cardinal fd.Fd.rhs)

(* Example 2: in σ(ClassCode=25 ∧ P.SupplierNo=S.SupplierNo)(Part×Supplier),
   PartNo is a key of the derived table and SupplierNo → Name.  Derivable by
   the closure: seed {P.PartNo}, constant {P.ClassCode}, equality
   (P.SupplierNo, S.SupplierNo), key FDs of both tables. *)
let test_example2_derived_key () =
  let fds =
    From_catalog.key_fds ~rel:"P" (part_table ())
    @ From_catalog.key_fds ~rel:"S" (supplier_table ())
  in
  let constants = Colref.set_of_list [ cr "P" "ClassCode" ] in
  let equalities = [ (cr "P" "SupplierNo", cr "S" "SupplierNo") ] in
  let closure =
    Closure.compute
      ~start:(Colref.set_of_list [ cr "P" "PartNo" ])
      ~constants ~equalities ~fds
  in
  (* PartNo determines everything in the join *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Colref.to_string c ^ " determined by PartNo")
        true (Colref.Set.mem c closure))
    [ cr "P" "PartName"; cr "P" "SupplierNo"; cr "S" "SupplierNo"; cr "S" "Name" ];
  (* and the non-key derived dependency SupplierNo → Name *)
  Alcotest.(check bool) "SupplierNo -> Name" true
    (Closure.implies ~constants ~equalities ~fds
       (Fd.make [ cr "S" "SupplierNo" ] [ cr "S" "Name" ]))

(* qcheck: the closure is monotone, idempotent, and extensive *)
let colrefs_pool = Array.init 6 (fun i -> cr "R" (Printf.sprintf "c%d" i))

let colset_gen =
  QCheck.Gen.(
    map
      (fun picks ->
        List.fold_left
          (fun acc i -> Colref.Set.add colrefs_pool.(i) acc)
          Colref.Set.empty picks)
      (list_size (int_range 0 4) (int_range 0 5)))

let fd_gen =
  QCheck.Gen.(
    map2 (fun l r -> Fd.of_sets l r) colset_gen colset_gen)

let setup_gen =
  QCheck.Gen.(
    triple colset_gen colset_gen (list_size (int_range 0 4) fd_gen))

let setup_arb = QCheck.make setup_gen

let prop_closure_extensive =
  QCheck.Test.make ~count:300 ~name:"closure contains its seed"
    setup_arb
    (fun (start, constants, fds) ->
      let c = Closure.compute ~start ~constants ~equalities:[] ~fds in
      Colref.Set.subset start c && Colref.Set.subset constants c)

let prop_closure_idempotent =
  QCheck.Test.make ~count:300 ~name:"closure is idempotent" setup_arb
    (fun (start, constants, fds) ->
      let c1 = Closure.compute ~start ~constants ~equalities:[] ~fds in
      let c2 = Closure.compute ~start:c1 ~constants ~equalities:[] ~fds in
      Colref.Set.equal c1 c2)

let prop_closure_monotone =
  QCheck.Test.make ~count:300 ~name:"closure is monotone in the seed"
    (QCheck.pair setup_arb setup_arb)
    (fun ((s1, consts, fds), (s2, _, _)) ->
      let small = Closure.compute ~start:s1 ~constants:consts ~equalities:[] ~fds in
      let big =
        Closure.compute ~start:(Colref.Set.union s1 s2) ~constants:consts
          ~equalities:[] ~fds
      in
      Colref.Set.subset small big)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "fd"
    [
      ( "closure",
        [
          Alcotest.test_case "Figure 7" `Quick test_figure7;
          Alcotest.test_case "no rules" `Quick test_closure_no_rules;
          Alcotest.test_case "equality chains" `Quick
            test_closure_transitive_equalities;
          Alcotest.test_case "FD needs full lhs" `Quick
            test_closure_fd_needs_full_lhs;
        ] );
      ("mine", [ Alcotest.test_case "atom mining" `Quick test_mine ]);
      ( "instance",
        [
          Alcotest.test_case "fd_holds" `Quick test_fd_holds_basic;
          Alcotest.test_case "NULL semantics (=ⁿ)" `Quick
            test_fd_holds_null_semantics;
          Alcotest.test_case "generic determines" `Quick test_determines_generic;
        ] );
      ( "derived",
        [
          Alcotest.test_case "key FDs from catalog" `Quick test_key_fds;
          Alcotest.test_case "Example 2 derived key" `Quick
            test_example2_derived_key;
        ] );
      ( "properties",
        qsuite
          [ prop_closure_extensive; prop_closure_idempotent; prop_closure_monotone ] );
    ]
