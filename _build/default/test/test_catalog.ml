(* Catalog tests: constraints (paper Figure 5), domains, key extraction and
   the T-predicate construction used by Theorem 3 / TestFD. *)

open Eager_schema
open Eager_expr
open Eager_catalog

let col name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

let dom_col name ctype domain : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = Some domain }

(* The Figure 5 table (the paper calls it "Department" but it is clearly an
   employee table) *)
let dep_id_domain =
  {
    Catalog.dname = "DepIdType";
    dtype = Ctype.Int;
    dcheck =
      Some
        (Expr.And
           ( Expr.Cmp (Expr.Gt, Expr.col "" "VALUE", Expr.int 0),
             Expr.Cmp (Expr.Lt, Expr.col "" "VALUE", Expr.int 100) ));
  }

let fig5_table () =
  Table_def.make "Emp"
    [
      col "EmpID" Ctype.Int;
      col "EmpSID" Ctype.Int;
      col "LastName" Ctype.String;
      col "FirstName" Ctype.String;
      dom_col "DeptID" Ctype.Int "DepIdType";
    ]
    [
      Constr.Check (Expr.Cmp (Expr.Gt, Expr.col "" "EmpID", Expr.int 0));
      Constr.Unique [ "EmpSID" ];
      Constr.Not_null "LastName";
      Constr.Check (Expr.Cmp (Expr.Gt, Expr.col "" "DeptID", Expr.int 5));
      Constr.Primary_key [ "EmpID" ];
      Constr.Foreign_key
        { cols = [ "DeptID" ]; ref_table = "Dept"; ref_cols = [ "DeptID" ] };
    ]

let test_keys () =
  let td = fig5_table () in
  Alcotest.(check (list (list string)))
    "primary first, then candidate keys"
    [ [ "EmpID" ]; [ "EmpSID" ] ]
    (Table_def.keys td)

let test_not_null () =
  let td = fig5_table () in
  (* NOT NULL LastName plus the primary-key column *)
  Alcotest.(check (list string)) "not-null columns" [ "EmpID"; "LastName" ]
    (Table_def.not_null td)

let test_schema () =
  let td = fig5_table () in
  let s = Table_def.schema ~rel:"E" td in
  Alcotest.(check int) "arity" 5 (Schema.arity s);
  Alcotest.(check bool) "qualified by rel" true
    (Schema.mem s (Colref.make "E" "DeptID"))

let test_constraint_validation () =
  Alcotest.check_raises "unknown constraint column"
    (Failure "table T: constraint references unknown column nope") (fun () ->
      ignore
        (Table_def.make "T" [ col "a" Ctype.Int ] [ Constr.Not_null "nope" ]));
  Alcotest.check_raises "duplicate column"
    (Failure "table T: duplicate column a") (fun () ->
      ignore (Table_def.make "T" [ col "a" Ctype.Int; col "a" Ctype.Int ] []))

let test_requalify () =
  let e = Expr.Cmp (Expr.Gt, Expr.col "" "x", Expr.col "" "y") in
  let e' = Constr.requalify "R" e in
  Alcotest.(check string) "requalified" "R.x > R.y" (Expr.to_string e')

let test_catalog_domains () =
  let cat = Catalog.add_domain Catalog.empty dep_id_domain in
  let cat = Catalog.add_table cat (fig5_table ()) in
  Alcotest.(check bool) "table found" true
    (Option.is_some (Catalog.find_table cat "Emp"));
  Alcotest.(check bool) "domain found" true
    (Option.is_some (Catalog.find_domain cat "DepIdType"));
  (* unknown domain rejected *)
  Alcotest.check_raises "unknown domain" (Failure "unknown domain NoSuch")
    (fun () ->
      ignore
        (Catalog.add_table cat
           (Table_def.make "T2" [ dom_col "d" Ctype.Int "NoSuch" ] [])));
  (* mismatched domain type rejected *)
  Alcotest.check_raises "domain type mismatch"
    (Failure "column d: type differs from domain DepIdType") (fun () ->
      ignore
        (Catalog.add_table cat
           (Table_def.make "T3" [ dom_col "d" Ctype.String "DepIdType" ] [])))

let test_duplicate_names () =
  let cat = Catalog.add_domain Catalog.empty dep_id_domain in
  let cat = Catalog.add_table cat (fig5_table ()) in
  Alcotest.check_raises "duplicate table" (Failure "name Emp already defined")
    (fun () -> ignore (Catalog.add_table cat (fig5_table ())));
  let cat = Catalog.add_view cat { Catalog.vname = "V"; vsql = "SELECT 1" } in
  Alcotest.check_raises "view/table collision"
    (Failure "name V already defined") (fun () ->
      ignore (Catalog.add_view cat { Catalog.vname = "V"; vsql = "x" }))

(* The T predicates: checks on NOT NULL columns are kept verbatim; checks on
   nullable columns are weakened with IS NULL escapes; NOT NULL columns
   contribute IS NOT NULL. *)
let test_table_checks_weakening () =
  let cat = Catalog.add_domain Catalog.empty dep_id_domain in
  let td = fig5_table () in
  let cat = Catalog.add_table cat td in
  let checks = Catalog.table_checks cat ~rel:"E" td in
  let strs = List.map Expr.to_string checks in
  (* EmpID is the primary key, hence NOT NULL: its check is unweakened *)
  Alcotest.(check bool) "EmpID check unweakened" true
    (List.mem "E.EmpID > 0" strs);
  (* DeptID is nullable: both its CHECK and its domain check get an IS NULL
     escape hatch *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "DeptID check weakened" true
    (List.exists
       (fun s -> contains s "E.DeptID > 5" && contains s "E.DeptID IS NULL")
       strs);
  (* NOT NULL facts are present *)
  Alcotest.(check bool) "LastName IS NOT NULL" true
    (List.mem "E.LastName IS NOT NULL" strs);
  Alcotest.(check bool) "EmpID IS NOT NULL" true
    (List.mem "E.EmpID IS NOT NULL" strs)

let test_check_predicates_raw () =
  let cat = Catalog.add_domain Catalog.empty dep_id_domain in
  let td = fig5_table () in
  let cat = Catalog.add_table cat td in
  let checks = Catalog.check_predicates cat ~rel:"E" td in
  (* two CHECKs + one domain check *)
  Alcotest.(check int) "three raw check predicates" 3 (List.length checks);
  let strs = List.map Expr.to_string checks in
  Alcotest.(check bool) "domain check instantiated at column" true
    (List.exists
       (fun s -> s = "(E.DeptID > 0 AND E.DeptID < 100)")
       strs)

let () =
  Alcotest.run "catalog"
    [
      ( "table_def",
        [
          Alcotest.test_case "keys" `Quick test_keys;
          Alcotest.test_case "not-null columns" `Quick test_not_null;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "validation" `Quick test_constraint_validation;
          Alcotest.test_case "requalify" `Quick test_requalify;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "domains" `Quick test_catalog_domains;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
          Alcotest.test_case "T predicates (weakening)" `Quick
            test_table_checks_weakening;
          Alcotest.test_case "raw check predicates" `Quick
            test_check_predicates_raw;
        ] );
    ]
