test/test_value.ml: Alcotest Eager_value List Printf QCheck QCheck_alcotest Tbool Value
