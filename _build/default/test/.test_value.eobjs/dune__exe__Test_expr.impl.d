test/test_expr.ml: Alcotest Colref Ctype Eager_expr Eager_schema Eager_value Expr List QCheck QCheck_alcotest Result Row Schema Tbool Value
