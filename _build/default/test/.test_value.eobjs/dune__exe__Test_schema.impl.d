test/test_schema.ml: Alcotest Array Colref Ctype Eager_schema Eager_value Format List QCheck QCheck_alcotest Row Schema Value
