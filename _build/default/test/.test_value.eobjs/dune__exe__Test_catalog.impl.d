test/test_catalog.ml: Alcotest Catalog Colref Constr Ctype Eager_catalog Eager_expr Eager_schema Expr List Option Schema String Table_def
