test/test_integration.ml: Alcotest Binder Canonical Database Eager_core Eager_exec Eager_opt Eager_parser Eager_schema Eager_storage Eager_value Exec Heap List Optree Planner Printf Row Testfd
