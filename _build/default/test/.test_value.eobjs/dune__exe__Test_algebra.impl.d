test/test_algebra.ml: Agg Alcotest Colref Ctype Eager_algebra Eager_expr Eager_schema Eager_value Expr Format List Plan Schema String Value
