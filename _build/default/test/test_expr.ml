(* Tests for the expression language: 3VL evaluation, normal forms, atom
   classification and predicate splitting. *)

open Eager_value
open Eager_schema
open Eager_expr

let tb = Alcotest.testable Tbool.pp Tbool.equal
let vv = Alcotest.testable Value.pp Value.equal

(* A three-column schema used throughout: R.a, R.b (ints), R.s (string). *)
let schema =
  Schema.make
    [
      (Colref.make "R" "a", Ctype.Int);
      (Colref.make "R" "b", Ctype.Int);
      (Colref.make "R" "s", Ctype.String);
    ]

let row a b s : Row.t = [| a; b; s |]
let r1 = row (Value.Int 1) (Value.Int 2) (Value.Str "x")
let r_null = row Value.Null (Value.Int 2) (Value.Str "x")

let a = Expr.col "R" "a"
let b = Expr.col "R" "b"
let s = Expr.col "R" "s"

let test_eval_scalar () =
  Alcotest.check vv "col" (Value.Int 1) (Expr.eval schema a r1);
  Alcotest.check vv "arith" (Value.Int 3)
    (Expr.eval schema (Expr.Arith (Expr.Add, a, b)) r1);
  Alcotest.check vv "arith with NULL" Value.Null
    (Expr.eval schema (Expr.Arith (Expr.Add, a, b)) r_null);
  Alcotest.check vv "neg" (Value.Int (-1)) (Expr.eval schema (Expr.Neg a) r1);
  Alcotest.check vv "string" (Value.Str "x") (Expr.eval schema s r1)

let test_eval_pred () =
  Alcotest.check tb "a = 1" Tbool.True
    (Expr.eval_pred schema (Expr.eq a (Expr.int 1)) r1);
  Alcotest.check tb "a = 2" Tbool.False
    (Expr.eval_pred schema (Expr.eq a (Expr.int 2)) r1);
  Alcotest.check tb "NULL = 1 is unknown" Tbool.Unknown
    (Expr.eval_pred schema (Expr.eq a (Expr.int 1)) r_null);
  Alcotest.check tb "unknown AND false = false" Tbool.False
    (Expr.eval_pred schema
       (Expr.And (Expr.eq a (Expr.int 1), Expr.eq b (Expr.int 99)))
       r_null);
  Alcotest.check tb "unknown OR true = true" Tbool.True
    (Expr.eval_pred schema
       (Expr.Or (Expr.eq a (Expr.int 1), Expr.eq b (Expr.int 2)))
       r_null);
  Alcotest.check tb "NOT unknown = unknown" Tbool.Unknown
    (Expr.eval_pred schema (Expr.Not (Expr.eq a (Expr.int 1))) r_null);
  Alcotest.check tb "IS NULL on NULL" Tbool.True
    (Expr.eval_pred schema (Expr.Is_null a) r_null);
  Alcotest.check tb "IS NULL on value" Tbool.False
    (Expr.eval_pred schema (Expr.Is_null a) r1);
  Alcotest.check tb "IS NOT NULL on NULL" Tbool.False
    (Expr.eval_pred schema (Expr.Is_not_null a) r_null)

let test_params () =
  let params name = if name = "p" then Value.Int 1 else Value.Null in
  Alcotest.check tb "a = :p" Tbool.True
    (Expr.eval_pred ~params schema (Expr.eq a (Expr.Param "p")) r1);
  Alcotest.(check (list string)) "params collected" [ "p"; "q" ]
    (Expr.params
       (Expr.And (Expr.eq a (Expr.Param "p"), Expr.eq b (Expr.Param "q"))))

let test_conjuncts () =
  let e = Expr.conj [ Expr.eq a b; Expr.eq b s; Expr.eq s a ] in
  Alcotest.(check int) "three conjuncts" 3 (List.length (Expr.conjuncts e));
  Alcotest.(check int) "etrue has none" 0 (List.length (Expr.conjuncts Expr.etrue));
  Alcotest.(check int) "disjuncts" 2
    (List.length (Expr.disjuncts (Expr.Or (Expr.eq a b, Expr.eq b s))))

let test_columns () =
  let e = Expr.And (Expr.eq a b, Expr.eq s (Expr.str "x")) in
  Alcotest.(check int) "3 columns" 3 (Colref.Set.cardinal (Expr.columns e))

let test_classify_atom () =
  (match Expr.classify_atom (Expr.eq a (Expr.int 5)) with
  | Expr.Col_eq_const (c, Value.Int 5) ->
      Alcotest.(check string) "col" "R.a" (Colref.to_string c)
  | _ -> Alcotest.fail "expected Col_eq_const");
  (match Expr.classify_atom (Expr.eq (Expr.int 5) a) with
  | Expr.Col_eq_const _ -> ()
  | _ -> Alcotest.fail "flipped constant");
  (match Expr.classify_atom (Expr.eq a b) with
  | Expr.Col_eq_col _ -> ()
  | _ -> Alcotest.fail "expected Col_eq_col");
  (match Expr.classify_atom (Expr.eq a (Expr.Param "h")) with
  | Expr.Col_eq_param _ -> ()
  | _ -> Alcotest.fail "expected Col_eq_param");
  (match Expr.classify_atom (Expr.Cmp (Expr.Lt, a, b)) with
  | Expr.Other_atom -> ()
  | _ -> Alcotest.fail "expected Other_atom");
  match Expr.classify_atom (Expr.Is_null a) with
  | Expr.Other_atom -> ()
  | _ -> Alcotest.fail "IS NULL is not an equality atom"

let test_split_conjuncts () =
  let left = Colref.set_of_list [ Colref.make "R" "a"; Colref.make "R" "b" ] in
  let right = Colref.set_of_list [ Colref.make "S" "x" ] in
  let x = Expr.col "S" "x" in
  let c1, c0, c2 =
    Expr.split_conjuncts ~left ~right
      (Expr.conj
         [
           Expr.eq a (Expr.int 1);
           Expr.eq a x;
           Expr.eq x (Expr.int 2);
           Expr.eq (Expr.int 1) (Expr.int 1);
         ])
  in
  Alcotest.(check int) "c1: a=1 plus the column-free conjunct" 2 (List.length c1);
  Alcotest.(check int) "c0: a=x" 1 (List.length c0);
  Alcotest.(check int) "c2: x=2" 1 (List.length c2);
  Alcotest.check_raises "unknown column rejected"
    (Failure "predicate mentions unknown column T.z") (fun () ->
      ignore (Expr.split_conjuncts ~left ~right (Expr.eq (Expr.col "T" "z") a)))

let test_infer () =
  let ok = function Ok t -> Ctype.to_string t | Error e -> "error: " ^ e in
  Alcotest.(check string) "int col" "INTEGER" (ok (Expr.infer schema a));
  Alcotest.(check string) "comparison is bool" "BOOLEAN"
    (ok (Expr.infer schema (Expr.eq a b)));
  Alcotest.(check string) "arith stays int" "INTEGER"
    (ok (Expr.infer schema (Expr.Arith (Expr.Add, a, b))));
  Alcotest.(check bool) "cannot compare int and string" true
    (Result.is_error (Expr.infer schema (Expr.eq a s)));
  Alcotest.(check bool) "AND over non-bool rejected" true
    (Result.is_error (Expr.infer schema (Expr.And (a, b))));
  Alcotest.(check bool) "unknown column rejected" true
    (Result.is_error (Expr.infer schema (Expr.col "R" "zz")))

let test_like () =
  let m pattern s = Expr.like_matches ~pattern s in
  Alcotest.(check bool) "literal" true (m "abc" "abc");
  Alcotest.(check bool) "literal mismatch" false (m "abc" "abd");
  Alcotest.(check bool) "underscore" true (m "a_c" "abc");
  Alcotest.(check bool) "underscore needs a char" false (m "a_c" "ac");
  Alcotest.(check bool) "percent any" true (m "%" "");
  Alcotest.(check bool) "prefix" true (m "ab%" "abcdef");
  Alcotest.(check bool) "suffix" true (m "%ef" "abcdef");
  Alcotest.(check bool) "infix" true (m "%cd%" "abcdef");
  Alcotest.(check bool) "multi-wildcard" true (m "a%c%e_" "abcdef");
  Alcotest.(check bool) "backtracking" true (m "%ab%ab" "abab");
  Alcotest.(check bool) "no match" false (m "%xyz%" "abcdef");
  Alcotest.(check bool) "empty pattern vs nonempty" false (m "" "a");
  (* evaluation semantics *)
  let e = Expr.Like { negated = false; arg = s; pattern = "x%" } in
  Alcotest.check tb "LIKE true" Tbool.True (Expr.eval_pred schema e r1);
  let en = Expr.Like { negated = true; arg = s; pattern = "x%" } in
  Alcotest.check tb "NOT LIKE false" Tbool.False (Expr.eval_pred schema en r1);
  (* NULL argument → unknown *)
  let row_null_s = [| Value.Int 1; Value.Int 2; Value.Null |] in
  Alcotest.check tb "NULL LIKE is unknown" Tbool.Unknown
    (Expr.eval_pred schema e row_null_s);
  (* typing: LIKE needs a string *)
  Alcotest.(check bool) "LIKE over int rejected" true
    (Result.is_error
       (Expr.infer schema (Expr.Like { negated = false; arg = a; pattern = "1" })));
  (* nnf flips negation *)
  match Expr.nnf (Expr.Not e) with
  | Expr.Like { negated = true; _ } -> ()
  | _ -> Alcotest.fail "nnf should flip LIKE negation"

let test_case_expr () =
  let grade =
    Expr.Case
      {
        branches =
          [
            (Expr.Cmp (Expr.Ge, a, Expr.int 2), Expr.str "hi");
            (Expr.Cmp (Expr.Ge, a, Expr.int 1), Expr.str "mid");
          ];
        else_ = Some (Expr.str "lo");
      }
  in
  Alcotest.check vv "first matching branch" (Value.Str "mid")
    (Expr.eval schema grade r1);
  Alcotest.check vv "higher branch wins" (Value.Str "hi")
    (Expr.eval schema grade (row (Value.Int 5) (Value.Int 0) (Value.Str "")));
  (* unknown conditions are skipped (a = NULL) *)
  Alcotest.check vv "NULL falls through to ELSE" (Value.Str "lo")
    (Expr.eval schema grade r_null);
  (* no ELSE: NULL *)
  let no_else =
    Expr.Case
      { branches = [ (Expr.eq a (Expr.int 99), Expr.str "x") ]; else_ = None }
  in
  Alcotest.check vv "missing ELSE is NULL" Value.Null
    (Expr.eval schema no_else r1);
  (* typing *)
  Alcotest.(check bool) "compatible branches infer" true
    (Result.is_ok (Expr.infer schema grade));
  let bad =
    Expr.Case
      {
        branches = [ (Expr.eq a (Expr.int 1), Expr.int 1) ];
        else_ = Some (Expr.str "s");
      }
  in
  Alcotest.(check bool) "incompatible branches rejected" true
    (Result.is_error (Expr.infer schema bad));
  (* columns traversal sees all arms *)
  Alcotest.(check int) "columns" 1 (Colref.Set.cardinal (Expr.columns grade))

(* ---------------- normal forms: semantics preservation ---------------- *)

let pred_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun n -> Expr.eq a (Expr.int n)) (int_range 0 2);
        map (fun n -> Expr.eq b (Expr.int n)) (int_range 0 2);
        return (Expr.eq a b);
        map (fun n -> Expr.Cmp (Expr.Lt, a, Expr.int n)) (int_range 0 2);
        return (Expr.Is_null a);
        (* LIKE and CASE participate in the normal-form properties too *)
        map
          (fun p -> Expr.Like { negated = false; arg = s; pattern = p })
          (oneofl [ "x%"; "_"; "%y" ]);
        map2
          (fun n m ->
            Expr.eq
              (Expr.Case
                 {
                   branches = [ (Expr.eq a (Expr.int n), Expr.int 1) ];
                   else_ = Some (Expr.int 0);
                 })
              (Expr.int m))
          (int_range 0 2) (int_range 0 1);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (2, map2 (fun x y -> Expr.And (x, y)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun x y -> Expr.Or (x, y)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun x -> Expr.Not x) (go (depth - 1)));
        ]
  in
  go 3

let pred_arb = QCheck.make ~print:Expr.to_string pred_gen

let small_value =
  QCheck.Gen.(
    oneof [ return Value.Null; map (fun n -> Value.Int n) (int_range 0 2) ])

let row_gen =
  QCheck.Gen.(
    map3
      (fun a b s -> [| a; b; s |])
      small_value small_value
      (oneof
         [ return Value.Null; map (fun s -> Value.Str s) (oneofl [ "x"; "xy"; "zy" ]) ]))

let row_arb = QCheck.make ~print:Row.to_string row_gen

let prop_nnf_preserves_3vl =
  QCheck.Test.make ~count:1000 ~name:"nnf preserves 3VL semantics"
    (QCheck.pair pred_arb row_arb)
    (fun (e, r) ->
      Tbool.equal (Expr.eval_pred schema e r)
        (Expr.eval_pred schema (Expr.nnf e) r))

let prop_cnf_preserves_3vl =
  QCheck.Test.make ~count:1000 ~name:"cnf preserves 3VL semantics"
    (QCheck.pair pred_arb row_arb)
    (fun (e, r) ->
      Tbool.equal
        (Expr.eval_pred schema e r)
        (Expr.eval_pred schema (Expr.of_cnf (Expr.cnf e)) r))

let prop_dnf_preserves_3vl =
  QCheck.Test.make ~count:500 ~name:"dnf preserves 3VL semantics"
    (QCheck.pair pred_arb row_arb)
    (fun (e, r) ->
      match Expr.dnf_of_cnf ~cap:4096 (Expr.cnf e) with
      | None -> true (* blow-up: allowed to bail *)
      | Some d ->
          Tbool.equal
            (Expr.eval_pred schema e r)
            (Expr.eval_pred schema (Expr.of_dnf d) r))

let prop_compiled_matches_eval =
  QCheck.Test.make ~count:500 ~name:"compile_pred agrees with eval_pred"
    (QCheck.pair pred_arb row_arb)
    (fun (e, r) ->
      let compiled = Expr.compile_pred schema e in
      Tbool.equal (compiled r) (Expr.eval_pred schema e r))

let test_cnf_shapes () =
  let e =
    Expr.And
      (Expr.Or (Expr.eq a (Expr.int 1), Expr.eq b (Expr.int 1)), Expr.eq a b)
  in
  Alcotest.(check int) "two clauses" 2 (List.length (Expr.cnf e));
  Alcotest.(check int) "cnf of true is empty" 0 (List.length (Expr.cnf Expr.etrue));
  match Expr.dnf_of_cnf (Expr.cnf e) with
  | Some d -> Alcotest.(check int) "two disjuncts" 2 (List.length d)
  | None -> Alcotest.fail "no blow-up expected"

let test_dnf_cap () =
  let clause i = Expr.Or (Expr.eq a (Expr.int i), Expr.eq b (Expr.int i)) in
  let e = Expr.conj (List.init 8 clause) in
  match Expr.dnf_of_cnf (Expr.cnf e) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected cap to trigger"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "expr"
    [
      ( "eval",
        [
          Alcotest.test_case "scalar" `Quick test_eval_scalar;
          Alcotest.test_case "predicates (3VL)" `Quick test_eval_pred;
          Alcotest.test_case "host variables" `Quick test_params;
        ] );
      ( "structure",
        [
          Alcotest.test_case "conjuncts/disjuncts" `Quick test_conjuncts;
          Alcotest.test_case "columns" `Quick test_columns;
          Alcotest.test_case "atom classification" `Quick test_classify_atom;
          Alcotest.test_case "C1/C0/C2 split" `Quick test_split_conjuncts;
          Alcotest.test_case "type inference" `Quick test_infer;
          Alcotest.test_case "cnf shapes" `Quick test_cnf_shapes;
          Alcotest.test_case "dnf cap" `Quick test_dnf_cap;
          Alcotest.test_case "LIKE" `Quick test_like;
          Alcotest.test_case "CASE" `Quick test_case_expr;
        ] );
      ( "properties",
        qsuite
          [
            prop_nnf_preserves_3vl;
            prop_cnf_preserves_3vl;
            prop_dnf_preserves_3vl;
            prop_compiled_matches_eval;
          ] );
    ]
