(* The flagship property suite: randomized verification of the paper's Main
   Theorem and of TestFD's soundness (Theorem 4).

   For random schemas (with and without keys), random instances (with NULLs
   and duplicates) and random queries from the canonical class we check:

   - SUFFICIENCY (Lemma 6, instance-wise): if FD1 and FD2 hold in the
     materialised join σ(C1∧C0∧C2)(r1×r2), then E1(r1,r2) = E2(r1,r2) as
     multisets.
   - TESTFD SOUNDNESS (Theorem 4): whenever TestFD answers YES, FD1 and FD2
     hold on every generated instance — hence the plans agree.
   - THEOREM 2: with DISTINCT and a strict subset of the grouping columns
     projected, FD1 ∧ FD2 still implies equivalence.
   - GENERATOR DIVERSITY: the random family actually produces YES cases,
     FD-violating cases, and non-equivalent plans (otherwise the above
     would pass vacuously).  *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

let cr = Colref.make

let coldef name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

(* ------------------------------------------------------------------ *)
(* random case generation *)

type s_key_kind = No_key | Primary_x | Nullable_unique_x

type case = {
  s_keyed : s_key_kind;
  r_rows : (Value.t * Value.t * Value.t) list; (* a, b, v *)
  s_rows : (Value.t * Value.t) list; (* x, y *)
  with_c0 : bool;
  with_c1 : bool;
  with_c2 : bool;
  ga1_b : bool; (* group on R.b *)
  ga2_x : bool; (* group on S.x *)
  ga2_y : bool; (* group on S.y *)
  agg_kind : int;
      (* 0 COUNT(v), 1 SUM(v), 2 MIN(v), 3 COUNT-star, 4 AVG(v),
         5 COUNT(DISTINCT v) — duplicate-sensitive, still pushable *)
  distinct_subset : bool; (* Theorem 2 variant *)
}

let small_val ?(allow_null = true) st =
  if allow_null && Random.State.int st 4 = 0 then Value.Null
  else Value.Int (1 + Random.State.int st 3)

let gen_case st =
  let s_keyed =
    match Random.State.int st 3 with
    | 0 -> No_key
    | 1 -> Primary_x
    | _ -> Nullable_unique_x
  in
  let r_rows =
    List.init
      (Random.State.int st 10)
      (fun _ -> (small_val st, small_val st, small_val st))
  in
  let s_rows =
    List.init
      (Random.State.int st 6)
      (fun i ->
        let x =
          match s_keyed with
          | Primary_x -> Value.Int (i + 1) (* distinct, non-null *)
          | Nullable_unique_x ->
              (* distinct when non-NULL, but NULLs may repeat — the SQL2
                 UNIQUE semantics that nullable keys cannot be trusted *)
              if Random.State.int st 3 = 0 then Value.Null else Value.Int (i + 1)
          | No_key -> small_val st
        in
        (x, small_val st))
  in
  let ga1_b = Random.State.bool st in
  let ga2_x = Random.State.bool st in
  let ga2_y = Random.State.bool st in
  (* keep at least one grouping column *)
  let ga2_x = if (not ga1_b) && (not ga2_x) && not ga2_y then true else ga2_x in
  {
    s_keyed;
    r_rows;
    s_rows;
    with_c0 = Random.State.int st 4 <> 0;
    with_c1 = Random.State.bool st;
    with_c2 = Random.State.bool st;
    ga1_b;
    ga2_x;
    ga2_y;
    agg_kind = Random.State.int st 6;
    distinct_subset = Random.State.int st 4 = 0;
  }

let build_db (c : case) =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "S"
       [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ]
       (match c.s_keyed with
       | Primary_x -> [ Constr.Primary_key [ "x" ] ]
       | Nullable_unique_x -> [ Constr.Unique [ "x" ] ]
       | No_key -> []));
  Database.create_table db
    (Table_def.make "R"
       [ coldef "a" Ctype.Int; coldef "b" Ctype.Int; coldef "v" Ctype.Int ]
       []);
  List.iter
    (fun (a, b, v) -> Database.insert_exn db "R" [ a; b; v ])
    c.r_rows;
  List.iter
    (fun (x, y) ->
      (* under a key, duplicates would be rejected — generator avoids them,
         but stay safe *)
      ignore (Database.insert db "S" [ x; y ]))
    c.s_rows;
  db

let build_query db (c : case) : Canonical.t =
  let ga1 = if c.ga1_b then [ cr "R" "b" ] else [] in
  let ga2 =
    (if c.ga2_x then [ cr "S" "x" ] else [])
    @ if c.ga2_y then [ cr "S" "y" ] else []
  in
  let conj =
    (if c.with_c0 then [ Expr.eq (Expr.col "R" "a") (Expr.col "S" "x") ] else [])
    @ (if c.with_c1 then
         [ Expr.Cmp (Expr.Ge, Expr.col "R" "b", Expr.int 1) ]
       else [])
    @
    if c.with_c2 then [ Expr.Cmp (Expr.Le, Expr.col "S" "y", Expr.int 2) ]
    else []
  in
  let v = Expr.col "R" "v" in
  let agg =
    match c.agg_kind with
    | 0 -> Agg.count (cr "" "agg") v
    | 1 -> Agg.sum (cr "" "agg") v
    | 2 -> Agg.min_ (cr "" "agg") v
    | 3 -> Agg.count_star (cr "" "agg")
    | 4 -> Agg.avg (cr "" "agg") v
    | _ -> Agg.count_distinct (cr "" "agg") v
  in
  let select_cols =
    if c.distinct_subset then
      (* strict subset: drop one grouping column if possible *)
      match ga1 @ ga2 with _ :: rest when rest <> [] -> rest | all -> all
    else ga1 @ ga2
  in
  Canonical.of_input_exn db
    {
      Canonical.sources =
        [
          { Canonical.table = "R"; rel = "R" };
          { Canonical.table = "S"; rel = "S" };
        ];
      where = Expr.conj conj;
      group_by = ga1 @ ga2;
      select_cols;
      select_aggs = [ agg ];
      select_distinct = c.distinct_subset;
      select_having = None;
      r1_hint = [ "R" ];
    }

(* ------------------------------------------------------------------ *)
(* the drive loop: statistics plus per-case assertions *)

let run_driver n seed =
  let st = Random.State.make [| seed |] in
  let yes_cases = ref 0 in
  let fd_ok_cases = ref 0 in
  let fd_fail_cases = ref 0 in
  let nonequiv_cases = ref 0 in
  for k = 1 to n do
    let c = gen_case st in
    let db = build_db c in
    let q = build_query db c in
    let chk = Theorem.check db q in
    let fd_both = chk.Theorem.fd1 && chk.Theorem.fd2 in
    let equiv = Theorem.equivalent db q in
    if fd_both then incr fd_ok_cases else incr fd_fail_cases;
    if not equiv then incr nonequiv_cases;
    (* SUFFICIENCY: FD1 ∧ FD2 on the instance ⇒ plans agree.
       (Holds for the ALL/full-projection case by the Main Theorem and for
       the DISTINCT/subset case by Theorem 2.) *)
    if fd_both && not equiv then
      Alcotest.fail
        (Printf.sprintf
           "case %d: FD1 ∧ FD2 hold but E1 ≠ E2\n%s\nR=%s\nS=%s" k
           (Format.asprintf "%a" Canonical.pp q)
           (String.concat ";"
              (List.map
                 (fun (a, b, v) ->
                   Printf.sprintf "(%s,%s,%s)" (Value.to_string a)
                     (Value.to_string b) (Value.to_string v))
                 c.r_rows))
           (String.concat ";"
              (List.map
                 (fun (x, y) ->
                   Printf.sprintf "(%s,%s)" (Value.to_string x)
                     (Value.to_string y))
                 c.s_rows)));
    (* TESTFD SOUNDNESS *)
    (match Testfd.test db q with
    | Testfd.Yes ->
        incr yes_cases;
        if not fd_both then
          Alcotest.fail
            (Printf.sprintf "case %d: TestFD said YES but FD1=%b FD2=%b" k
               chk.Theorem.fd1 chk.Theorem.fd2);
        if not equiv then
          Alcotest.fail (Printf.sprintf "case %d: TestFD YES but E1 ≠ E2" k)
    | Testfd.No _ -> ());
    (* strict mode must be at most as permissive as the relaxed mode *)
    match Testfd.test ~strict:true db q with
    | Testfd.Yes -> (
        match Testfd.test ~strict:false db q with
        | Testfd.Yes -> ()
        | Testfd.No _ ->
            Alcotest.fail
              (Printf.sprintf "case %d: strict YES but relaxed NO" k))
    | Testfd.No _ -> ()
  done;
  (!yes_cases, !fd_ok_cases, !fd_fail_cases, !nonequiv_cases)

let test_main_theorem_randomized () =
  let yes, fd_ok, fd_fail, nonequiv = run_driver 600 20260705 in
  (* generator diversity: all regions of the space were exercised *)
  Alcotest.(check bool)
    (Printf.sprintf "some TestFD YES cases (%d)" yes)
    true (yes > 30);
  Alcotest.(check bool)
    (Printf.sprintf "some FD-holding cases (%d)" fd_ok)
    true (fd_ok > 50);
  Alcotest.(check bool)
    (Printf.sprintf "some FD-violating cases (%d)" fd_fail)
    true (fd_fail > 50);
  Alcotest.(check bool)
    (Printf.sprintf "some genuinely non-equivalent cases (%d)" nonequiv)
    true
    (nonequiv > 20)

let test_second_seed () =
  ignore (run_driver 400 987654321)

let test_third_seed_larger_tables () =
  (* a denser variant: more rows, more collisions *)
  let st = Random.State.make [| 1337 |] in
  for _ = 1 to 150 do
    let c = gen_case st in
    let c =
      {
        c with
        r_rows =
          List.init 25 (fun _ -> (small_val st, small_val st, small_val st));
      }
    in
    let db = build_db c in
    let q = build_query db c in
    let chk = Theorem.check db q in
    if chk.Theorem.fd1 && chk.Theorem.fd2 then
      Alcotest.(check bool) "sufficiency on dense case" true
        (Theorem.equivalent db q)
  done

(* Necessity (Lemmas 2 and 3) exercised concretely: a known FD1-violating
   instance and a known FD2-violating instance must yield E1 ≠ E2. *)
let test_necessity_witnesses () =
  (* FD2 violation: S unkeyed with duplicate x values; group on S.y.
     Two S rows (x=1, y=1): the eager plan emits the aggregated R' row once
     per S row. *)
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "S" [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ] []);
  Database.create_table db
    (Table_def.make "R"
       [ coldef "a" Ctype.Int; coldef "b" Ctype.Int; coldef "v" Ctype.Int ]
       []);
  Database.load db "S" [ [ Value.Int 1; Value.Int 1 ]; [ Value.Int 1; Value.Int 1 ] ];
  Database.load db "R" [ [ Value.Int 1; Value.Int 1; Value.Int 5 ] ];
  let q =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "R"; rel = "R" };
            { Canonical.table = "S"; rel = "S" };
          ];
        where = Expr.eq (Expr.col "R" "a") (Expr.col "S" "x");
        group_by = [ cr "S" "y" ];
        select_cols = [ cr "S" "y" ];
        select_aggs = [ Agg.count (cr "" "n") (Expr.col "R" "v") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [ "R" ];
      }
  in
  let chk = Theorem.check db q in
  Alcotest.(check bool) "FD2 violated" false chk.Theorem.fd2;
  Alcotest.(check bool) "E1 ≠ E2" false (Theorem.equivalent db q);
  (* E1: one group (y=1, count 2); E2: R' has one row joining both S rows *)
  let e1_rows = Eager_exec.Exec.run_rows db (Plans.e1 db q) in
  let e2_rows = Eager_exec.Exec.run_rows db (Plans.e2 db q) in
  Alcotest.(check int) "E1 has 1 row" 1 (List.length e1_rows);
  Alcotest.(check int) "E2 has 2 rows" 2 (List.length e2_rows)

let test_fd1_violation_witness () =
  (* FD1 violation: group on S.y only while GA1+ = {R.a}; two R rows with
     different a both join rows with the same y. *)
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "S" [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ]
       [ Constr.Primary_key [ "x" ] ]);
  Database.create_table db
    (Table_def.make "R"
       [ coldef "a" Ctype.Int; coldef "b" Ctype.Int; coldef "v" Ctype.Int ]
       []);
  Database.load db "S" [ [ Value.Int 1; Value.Int 7 ]; [ Value.Int 2; Value.Int 7 ] ];
  Database.load db "R"
    [ [ Value.Int 1; Value.Int 1; Value.Int 5 ];
      [ Value.Int 2; Value.Int 1; Value.Int 6 ] ];
  let q =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "R"; rel = "R" };
            { Canonical.table = "S"; rel = "S" };
          ];
        where = Expr.eq (Expr.col "R" "a") (Expr.col "S" "x");
        group_by = [ cr "S" "y" ];
        select_cols = [ cr "S" "y" ];
        select_aggs = [ Agg.sum (cr "" "s") (Expr.col "R" "v") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [ "R" ];
      }
  in
  let chk = Theorem.check db q in
  Alcotest.(check bool) "FD1 violated" false chk.Theorem.fd1;
  Alcotest.(check bool) "E1 ≠ E2" false (Theorem.equivalent db q)

let () =
  Alcotest.run "equivalence"
    [
      ( "randomized",
        [
          Alcotest.test_case "main theorem, 600 cases" `Slow
            test_main_theorem_randomized;
          Alcotest.test_case "second seed, 400 cases" `Slow test_second_seed;
          Alcotest.test_case "dense instances" `Slow
            test_third_seed_larger_tables;
        ] );
      ( "necessity witnesses",
        [
          Alcotest.test_case "FD2 violation ⇒ E1 ≠ E2" `Quick
            test_necessity_witnesses;
          Alcotest.test_case "FD1 violation ⇒ E1 ≠ E2" `Quick
            test_fd1_violation_witness;
        ] );
    ]
